package sim

import (
	"encoding/json"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/synth"
	"memdep/internal/workload"
)

// DistBucket is one bucket of a synthetic workload's dependence-distance
// histogram: Weight relative units of store→load dependences at
// (approximately) Dist dynamic instructions.
type DistBucket struct {
	Dist   int `json:"dist"`   // Dist is the dependence distance in dynamic instructions.
	Weight int `json:"weight"` // Weight is the bucket's relative share of dependences.
}

// SynthSpec parameterizes a synthetic workload (internal/synth): a seeded,
// deterministic generator whose committed instruction stream follows the
// described memory-dependence model.  The zero value of every field selects
// the generator's default, so `{"synth": {}}` is a complete request
// workload.  The same spec and seed always produce a byte-identical program
// -- and therefore byte-identical traces and DeepEqual simulation results --
// at every engine worker count, on every platform.
type SynthSpec struct {
	// Name labels the workload in output ("" = "synth").
	Name string `json:"name,omitempty"`
	// Seed seeds the generator; different seeds give structurally different
	// workloads under the same model parameters.
	Seed uint64 `json:"seed,omitempty"`
	// Ops is the approximate committed dynamic instruction count (0 = 32768).
	Ops int `json:"ops,omitempty"`
	// Body is the approximate static loop-body length (0 = 512); it bounds
	// the number of distinct static load/store PCs the predictors see.
	Body int `json:"body,omitempty"`
	// TaskSize is the mean task size in instructions (0 = 28).
	TaskSize int `json:"task_size,omitempty"`
	// TaskSpread is the half-width of the uniform task-size distribution
	// (0 = 12).
	TaskSpread int `json:"task_spread,omitempty"`
	// LoadFrac is the fraction of body slots that are loads (0 = 0.25).
	LoadFrac float64 `json:"load_frac,omitempty"`
	// StoreFrac is the fraction of body slots that are stores (0 = 0.15).
	StoreFrac float64 `json:"store_frac,omitempty"`
	// DepFrac is the fraction of loads given an engineered store→load
	// dependence (0 = 0.5).
	DepFrac float64 `json:"dep_frac,omitempty"`
	// DepDists is the dependence-distance histogram (nil = 8:4, 32:2, 128:1).
	DepDists []DistBucket `json:"dep_dists,omitempty"`
	// AliasSetSize makes each store rotate over this many addresses (0 = 1):
	// its dependent loads collide with it every AliasSetSize-th iteration
	// only, the mispredict-prone regime.  Rounded up to a power of two.
	AliasSetSize int `json:"alias_set_size,omitempty"`
	// LoopCarried is the fraction of engineered dependences produced in the
	// previous loop iteration (0 = 0.25).
	LoopCarried float64 `json:"loop_carried,omitempty"`
}

// internal converts to the generator's spec type.  A nil receiver is the
// zero spec.
func (s *SynthSpec) internal() synth.Spec {
	if s == nil {
		return synth.Spec{}
	}
	sp := synth.Spec{
		Name:         s.Name,
		Seed:         s.Seed,
		Ops:          s.Ops,
		Body:         s.Body,
		TaskSize:     s.TaskSize,
		TaskSpread:   s.TaskSpread,
		LoadFrac:     s.LoadFrac,
		StoreFrac:    s.StoreFrac,
		DepFrac:      s.DepFrac,
		AliasSetSize: s.AliasSetSize,
		LoopCarried:  s.LoopCarried,
	}
	if len(s.DepDists) > 0 {
		sp.DepDists = make([]synth.DistBucket, len(s.DepDists))
		for i, b := range s.DepDists {
			sp.DepDists[i] = synth.DistBucket{Dist: b.Dist, Weight: b.Weight}
		}
	}
	return sp
}

// synthFromInternal converts a generator spec to the public shape.
func synthFromInternal(sp synth.Spec) *SynthSpec {
	out := &SynthSpec{
		Name:         sp.Name,
		Seed:         sp.Seed,
		Ops:          sp.Ops,
		Body:         sp.Body,
		TaskSize:     sp.TaskSize,
		TaskSpread:   sp.TaskSpread,
		LoadFrac:     sp.LoadFrac,
		StoreFrac:    sp.StoreFrac,
		DepFrac:      sp.DepFrac,
		AliasSetSize: sp.AliasSetSize,
		LoopCarried:  sp.LoopCarried,
	}
	if len(sp.DepDists) > 0 {
		out.DepDists = make([]DistBucket, len(sp.DepDists))
		for i, b := range sp.DepDists {
			out.DepDists[i] = DistBucket{Dist: b.Dist, Weight: b.Weight}
		}
	}
	return out
}

// Normalize returns the spec with every defaulted field materialized,
// without touching the receiver.
func (s *SynthSpec) Normalize() *SynthSpec {
	return synthFromInternal(s.internal().Normalize())
}

// validate appends the spec's field problems to v, prefixing field names
// with "synth.".
func (s *SynthSpec) validate(v *ValidationError) {
	for _, p := range s.internal().Problems() {
		v.add("synth."+p.Field, p.Value, p.Msg)
	}
}

// Validate reports every invalid field as a *ValidationError (nil when the
// spec is well-formed).
func (s *SynthSpec) Validate() error {
	v := &ValidationError{}
	s.validate(v)
	return v.errs()
}

// CanonicalJSON returns the canonical JSON identity of the spec: the
// encoding of its normalized form.  It seeds the generator and keys the
// session cache, so two requests with the same canonical spec share one
// build, trace and preprocessed work item.
func (s *SynthSpec) CanonicalJSON() string {
	return s.internal().Key()
}

// Workload identifies the workload of a request: exactly one of Bench (a
// benchmark of the committed synthetic suite, see Benchmarks) or Synth (an
// inline synthetic-workload spec).
type Workload struct {
	Bench string     `json:"bench,omitempty"` // Bench names a benchmark of the committed suite.
	Synth *SynthSpec `json:"synth,omitempty"` // Synth is an inline synthetic-workload spec.
}

// Normalize returns the workload with synthetic defaults materialized.
func (w Workload) Normalize() Workload {
	if w.Synth != nil {
		w.Synth = w.Synth.Normalize()
	}
	return w
}

// validate appends the workload's problems to v.
func (w Workload) validate(v *ValidationError) {
	switch {
	case w.Bench == "" && w.Synth == nil:
		v.add("bench", "", "a benchmark name or a synthetic spec is required")
	case w.Bench != "" && w.Synth != nil:
		v.add("bench", w.Bench, "bench and synth are mutually exclusive")
	case w.Synth != nil:
		w.Synth.validate(v)
	default:
		if _, err := workload.Get(w.Bench); err != nil {
			v.add("bench", w.Bench, "unknown benchmark")
		}
	}
}

// Validate reports every problem with the workload as a *ValidationError
// (nil when it is well-formed).
func (w Workload) Validate() error {
	v := &ValidationError{}
	w.validate(v)
	return v.errs()
}

// CanonicalJSON returns the workload's identity: the benchmark name or the
// normalized synthetic spec, in canonical field order.
func (w Workload) CanonicalJSON() string {
	if w.Synth != nil {
		return `{"synth":` + w.Synth.CanonicalJSON() + `}`
	}
	data, err := json.Marshal(struct {
		Bench string `json:"bench"`
	}{w.Bench})
	if err != nil {
		panic(fmt.Sprintf("sim: marshal workload: %v", err))
	}
	return string(data)
}

// Name returns the workload's display name: the benchmark name or the
// synthetic spec's (defaulted) name.
func (w Workload) Name() string {
	if w.Synth != nil {
		return w.Synth.internal().Normalize().Name
	}
	return w.Bench
}

// buildJob returns the engine spec that resolves to the workload's program.
func (w Workload) buildJob(scale int) engine.Spec {
	if w.Synth != nil {
		return synth.BuildJob{Spec: w.Synth.internal(), Scale: scale}
	}
	return workload.BuildJob{Name: w.Bench, Scale: scale}
}

// checkSynthScale appends a problem when a synthetic workload's scaled
// dynamic length exceeds the generator's ops cap: Scale multiplies the
// iteration count, so without this check a modest spec times a huge scale
// would dodge the [1, 5000000] bound Validate puts on Ops.
func checkSynthScale(spec *SynthSpec, scale int, v *ValidationError) {
	if spec == nil || scale <= 1 {
		return
	}
	ops := spec.internal().Normalize().Ops
	if ops > 0 && scale > synth.MaxOps/ops {
		v.add("scale", fmt.Sprint(scale),
			fmt.Sprintf("scale × ops exceeds the %d dynamic-instruction cap", synth.MaxOps))
	}
}

// workloadMeta is a fully resolved workload: display metadata, the effective
// scale and the program-build job.
type workloadMeta struct {
	name        string
	suite       string
	description string
	scale       int
	job         engine.Spec
}

// resolveWorkload validates a (bench, synth, scale) triple and resolves its
// metadata and program job.  Problems come back as a *ValidationError.
func resolveWorkload(bench string, spec *SynthSpec, scale int) (workloadMeta, error) {
	wl := Workload{Bench: bench, Synth: spec}
	v := &ValidationError{}
	wl.validate(v)
	if scale < 0 {
		v.add("scale", fmt.Sprint(scale), "must not be negative")
	}
	checkSynthScale(spec, scale, v)
	if err := v.errs(); err != nil {
		return workloadMeta{}, err
	}
	m := workloadMeta{name: wl.Name(), scale: scale}
	if wl.Synth != nil {
		if m.scale == 0 {
			m.scale = 1
		}
		m.suite = "synthetic"
		m.description = "generated synthetic workload (seeded parameterized dependence model)"
	} else {
		w, err := workload.Get(wl.Bench)
		if err != nil {
			return workloadMeta{}, err
		}
		if m.scale == 0 {
			m.scale = w.DefaultScale
		}
		m.suite = w.Suite.String()
		m.description = w.Description
	}
	m.job = wl.buildJob(m.scale)
	return m, nil
}
