package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// TestRunMatchesInternalSimulator checks the facade end to end: a Run through
// the session produces exactly the numbers the internal simulator produces
// for the equivalent hand-assembled configuration.
func TestRunMatchesInternalSimulator(t *testing.T) {
	s := NewSession(WithWorkers(2))
	req := Request{Bench: "compress", Stages: 8, Policy: PolicyESync, MaxInstructions: 40_000}
	res, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	item, err := multiscalar.Preprocess(workload.MustGet("compress").Build(workload.MustGet("compress").DefaultScale),
		trace.Config{MaxInstructions: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	want, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, policy.ESync))
	if err != nil {
		t.Fatal(err)
	}

	if res.Cycles != want.Cycles {
		t.Errorf("cycles = %d, want %d", res.Cycles, want.Cycles)
	}
	if res.Instructions != want.Instructions || res.Loads != want.Loads {
		t.Errorf("work = %d/%d, want %d/%d", res.Instructions, res.Loads, want.Instructions, want.Loads)
	}
	if res.Misspeculations != want.Misspeculations {
		t.Errorf("misspeculations = %d, want %d", res.Misspeculations, want.Misspeculations)
	}
	if res.IPC != want.IPC() {
		t.Errorf("IPC = %v, want %v", res.IPC, want.IPC())
	}
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Error("degenerate result")
	}
	if res.AvgTaskSize != item.AvgTaskSize() {
		t.Errorf("avg task size = %v, want %v", res.AvgTaskSize, item.AvgTaskSize())
	}
	if len(res.MisspecPairs) == 0 || res.MisspecPairs[0].Store == "" {
		t.Error("mis-speculated pairs must be annotated with disassembly")
	}
	if res.Request.Stages != 8 || res.Request.Policy != PolicyESync || res.Request.Scale == 0 {
		t.Errorf("result must echo the normalized request, got %+v", res.Request)
	}
}

// TestRunGridSharesWorkItems checks the cache contract: a grid over policies
// and stage counts preprocesses the benchmark once.
func TestRunGridSharesWorkItems(t *testing.T) {
	s := NewSession(WithWorkers(4))
	var reqs []Request
	for _, stages := range []int{4, 8} {
		for _, pol := range []Policy{PolicyAlways, PolicySync, PolicyESync} {
			reqs = append(reqs, Request{Bench: "sc", Stages: stages, Policy: pol, MaxInstructions: 30_000})
		}
	}
	results, err := s.RunGrid(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Cycles == 0 {
			t.Errorf("result %d has zero cycles", i)
		}
		if res.Request.Stages != reqs[i].Stages || res.Request.Policy != reqs[i].Policy {
			t.Errorf("result %d answers the wrong request: %+v", i, res.Request)
		}
	}
	// 1 build + 1 preprocess + 6 simulations.
	if st := s.Stats(); st.Executed != 8 {
		t.Errorf("executed %d jobs, want 8 (shared work item)", st.Executed)
	}

	// Re-running the same grid is served entirely from the cache.
	before := s.Stats().Executed
	if _, err := s.RunGrid(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Executed; after != before {
		t.Errorf("re-run executed %d new jobs, want 0", after-before)
	}
}

// TestRunGridPositionalAndDeterministic checks that results are positional
// and byte-identical at every worker count.
func TestRunGridPositionalAndDeterministic(t *testing.T) {
	reqs := []Request{
		{Bench: "compress", Stages: 8, Policy: PolicyESync, MaxInstructions: 20_000},
		{Bench: "compress", Stages: 4, Policy: PolicyAlways, MaxInstructions: 20_000},
		{Bench: "xlisp", Stages: 8, Policy: PolicySync, MaxInstructions: 20_000},
	}
	render := func(workers int) string {
		s := NewSession(WithWorkers(workers))
		results, err := s.RunGrid(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	one := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != one {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
	}
}

// TestRunGridValidationError checks that an invalid request in a grid is
// rejected up front with its index and structured fields.
func TestRunGridValidationError(t *testing.T) {
	s := NewSession()
	_, err := s.RunGrid(context.Background(), []Request{
		{Bench: "compress", MaxInstructions: 10_000},
		{Bench: "no-such-bench"},
	})
	if err == nil {
		t.Fatal("grid with an invalid request must fail")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want wrapped *ValidationError", err)
	}
	if verr.Fields[0].Field != "bench" {
		t.Errorf("field = %q, want bench", verr.Fields[0].Field)
	}
}

// TestRunHonoursCancellation checks that a cancelled context aborts a run.
func TestRunHonoursCancellation(t *testing.T) {
	s := NewSession(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Run(ctx, Request{Bench: "compress", MaxInstructions: 10_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// The cancellation must not poison the cache for a live caller.
	res, err := s.Run(context.Background(), Request{Bench: "compress", MaxInstructions: 10_000})
	if err != nil || res.Cycles == 0 {
		t.Fatalf("fresh run after cancellation: %v, %+v", err, res)
	}
}

// TestSessionDefaults checks WithDefaults overlays and per-request overrides.
func TestSessionDefaults(t *testing.T) {
	s := NewSession(WithDefaults(Request{MaxInstructions: 15_000, Stages: 4, Policy: PolicyAlways}))
	res, err := s.Run(context.Background(), Request{Bench: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Request.Stages != 4 || res.Request.Policy != PolicyAlways || res.Request.MaxInstructions != 15_000 {
		t.Errorf("defaults not applied: %+v", res.Request)
	}
	res, err = s.Run(context.Background(), Request{Bench: "compress", Stages: 8, Policy: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if res.Request.Stages != 8 || res.Request.Policy != PolicyNever {
		t.Errorf("per-request override lost: %+v", res.Request)
	}
}

// TestResultJSONRoundTrip checks the public result round-trips through JSON.
func TestResultJSONRoundTrip(t *testing.T) {
	s := NewSession()
	res, err := s.Run(context.Background(), Request{
		Bench: "compress", Policy: PolicyAlways, MaxInstructions: 20_000, DDCSizes: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DDCMissRate) == 0 || len(res.MisspecPairs) == 0 {
		t.Fatal("test needs a result with DDC rates and pairs")
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Fatalf("result did not round trip:\n got %+v\nwant %+v", back, *res)
	}
}

// TestPreparedExecute checks the uncached benchmarking path agrees with the
// memoized one.
func TestPreparedExecute(t *testing.T) {
	s := NewSession()
	req := Request{Bench: "xlisp", Policy: PolicyESync, MaxInstructions: 20_000}
	p, err := s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks() == 0 {
		t.Error("prepared work item has no tasks")
	}
	r1, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("uncached execute: %d cycles, memoized run: %d", r1.Cycles, r2.Cycles)
	}
}

// TestBenchmarksAndExperiments checks the catalogue endpoints.
func TestBenchmarksAndExperiments(t *testing.T) {
	benches := Benchmarks()
	if len(benches) < 20 {
		t.Errorf("benchmarks = %d, want the full suite", len(benches))
	}
	seen := map[string]bool{}
	for _, b := range benches {
		if b.Name == "" || b.Suite == "" || b.DefaultScale < 1 {
			t.Errorf("incomplete benchmark %+v", b)
		}
		seen[b.Name] = true
	}
	for _, name := range []string{"compress", "xlisp", "101.tomcatv"} {
		if !seen[name] {
			t.Errorf("benchmark %s missing", name)
		}
	}

	exps := Experiments()
	if len(exps) < 14 {
		t.Errorf("experiments = %d", len(exps))
	}

	s := NewSession()
	tab, err := s.RunExperiment(context.Background(), "table6", SuiteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || tab.Render() == "" || tab.CSV() == "" {
		t.Error("experiment table is empty")
	}
	if _, err := s.RunExperiment(context.Background(), "table99", SuiteOptions{}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

// TestInspection exercises Trace, Disassemble, TaskSizes and Window.
func TestInspection(t *testing.T) {
	s := NewSession()
	ctx := context.Background()
	treq := TraceRequest{Bench: "compress", MaxInstructions: 40_000}

	sum, err := s.Trace(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instructions == 0 || sum.Tasks == 0 || sum.StaticInstructions == 0 {
		t.Errorf("degenerate summary %+v", sum)
	}
	if sum.AvgTaskSize() <= 0 {
		t.Error("average task size must be positive")
	}

	asm, err := s.Disassemble(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	if asm == "" {
		t.Error("empty disassembly")
	}

	hist, err := s.TaskSizes(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 7 {
		t.Fatalf("histogram has %d buckets, want 7", len(hist))
	}
	total := 0
	for _, b := range hist {
		total += b.Tasks
	}
	if total == 0 {
		t.Error("histogram is empty")
	}

	wres, err := s.Window(ctx, WindowRequest{Bench: "compress", MaxInstructions: 40_000, WindowSizes: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(wres) != 1 || wres[0].WindowSize != 64 || wres[0].Misspeculations == 0 {
		t.Errorf("window result %+v", wres)
	}
	if len(wres[0].Pairs) == 0 || wres[0].Pairs[0].Load == "" {
		t.Error("window pairs must be annotated")
	}

	if _, err := s.Trace(ctx, TraceRequest{Bench: "nope"}); err == nil {
		t.Error("unknown benchmark must fail")
	}

	// WindowGrid: positional multi-benchmark analyses over one job set.
	grids, err := s.WindowGrid(ctx, []WindowRequest{
		{Bench: "compress", MaxInstructions: 40_000, WindowSizes: []int{64}},
		{Bench: "espresso", MaxInstructions: 40_000, WindowSizes: []int{32, 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 || len(grids[0]) != 1 || len(grids[1]) != 2 {
		t.Fatalf("grid shape %d/%d/%d", len(grids), len(grids[0]), len(grids[1]))
	}
	if !reflect.DeepEqual(grids[0], wres) {
		t.Error("WindowGrid result differs from the equivalent Window call")
	}
	if _, err := s.WindowGrid(ctx, []WindowRequest{{Bench: "compress"}, {Bench: "nope"}}); err == nil ||
		!strings.Contains(err.Error(), "request 1") {
		t.Errorf("grid error must carry the request index, got %v", err)
	}
}

// TestConcurrentRunGridReusesWorkerArenas hammers one session's RunGrid from
// many goroutines at once.  Each grid fans out over the engine's worker pool,
// where every worker reuses a per-goroutine simulator arena (and misses of
// the scratch store fall back to the package-level sync.Pool), so under
// -race this is the regression gate for the pooled/reused simulators: arena
// state must stay confined to one worker at a time, and every concurrent
// result must match the serial reference.
func TestConcurrentRunGridReusesWorkerArenas(t *testing.T) {
	grid := []Request{}
	for _, pol := range []Policy{PolicyAlways, PolicyNever, PolicyESync} {
		for _, stages := range []int{4, 8} {
			grid = append(grid, Request{Bench: "compress", Scale: 1, MaxInstructions: 10_000, Stages: stages, Policy: pol})
		}
	}

	ref := NewSession(WithWorkers(1))
	want, err := ref.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(WithWorkers(4))
	const callers = 8
	results := make([][]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.RunGrid(context.Background(), grid)
		}()
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		for j := range grid {
			if !reflect.DeepEqual(results[i][j], want[j]) {
				t.Errorf("caller %d, request %d: concurrent result diverged from serial reference", i, j)
			}
		}
	}
}
