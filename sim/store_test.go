package sim

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeTestReqs is a small grid over a synthetic workload: every persisted
// kind (synth/build, multiscalar/preprocess, multiscalar/simulate) is
// exercised, and two policies share one workload so the in-memory tier
// still does its own deduplication on top of the disk tier.
func storeTestReqs() []Request {
	spec := &SynthSpec{Seed: 1, Ops: 2048}
	return []Request{
		{Synth: spec, Stages: 4, Policy: PolicyAlways},
		{Synth: spec, Stages: 4, Policy: PolicyESync},
	}
}

// TestStoreWarmRunRecomputesNothing is the end-to-end contract of the
// persistent store: a second session pointed at the same directory executes
// zero jobs -- simulation, preprocessing and program building all come from
// disk -- and its results are deeply equal to the cold run's.
func TestStoreWarmRunRecomputesNothing(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := storeTestReqs()

	cold := NewSession(WithStore(dir))
	coldResults, err := cold.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Stats()
	if coldStats.Executed == 0 {
		t.Fatal("cold run executed nothing")
	}
	if coldStats.Store == nil {
		t.Fatal("cold run has no store stats")
	}
	if w := coldStats.Store.Counters.Writes; w == 0 {
		t.Fatalf("cold run persisted nothing: %+v", coldStats.Store.Counters)
	}
	if coldStats.Store.Counters.Hits != 0 {
		t.Fatalf("cold run hit the empty store: %+v", coldStats.Store.Counters)
	}

	warm := NewSession(WithStore(dir))
	warmResults, err := warm.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	warmStats := warm.Stats()
	if warmStats.Executed != 0 {
		t.Fatalf("warm run executed %d jobs, want 0 (everything from disk)", warmStats.Executed)
	}
	sc := warmStats.Store.Counters
	if sc.Hits == 0 || sc.Misses != 0 || sc.Corrupt != 0 {
		t.Fatalf("warm counters = %+v, want all-hit", sc)
	}
	// Every persisted kind must have contributed hits.
	for _, kind := range []string{"synth/build", "multiscalar/preprocess", "multiscalar/simulate"} {
		if kc := warmStats.Store.Kinds[kind]; kc.Hits == 0 {
			t.Errorf("kind %s: no disk hits (%+v)", kind, kc)
		}
	}

	// Warm results are indistinguishable from cold ones.
	if !reflect.DeepEqual(warmResults, coldResults) {
		t.Fatal("warm results differ from cold results")
	}
}

// TestStoreSurvivesCorruptObjects damages every object on disk; a third run
// must degrade to recomputation (correct results, corrupt counters bumped)
// and repair the store for the run after it.
func TestStoreSurvivesCorruptObjects(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := storeTestReqs()

	cold := NewSession(WithStore(dir))
	want, err := cold.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every object to garbage.
	damaged := 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		damaged++
		return os.WriteFile(path, []byte("MDSO"), 0o644)
	})
	if err != nil || damaged == 0 {
		t.Fatalf("damaged %d objects, err %v", damaged, err)
	}

	hurt := NewSession(WithStore(dir))
	got, err := hurt.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after corruption differ")
	}
	st := hurt.Stats()
	if st.Store.Counters.Corrupt == 0 {
		t.Fatalf("corrupt objects not counted: %+v", st.Store.Counters)
	}
	if st.Executed == 0 {
		t.Fatal("corrupted store cannot serve hits, jobs must recompute")
	}

	// The recomputation rewrote the objects: the next session is warm again.
	healed := NewSession(WithStore(dir))
	if _, err := healed.RunGrid(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if ex := healed.Stats().Executed; ex != 0 {
		t.Fatalf("store not repaired: healed run executed %d jobs", ex)
	}
}

// TestStoreDisabledByDefault pins the opt-in: without WithStore, Stats
// reports no store and nothing lands on disk.
func TestStoreDisabledByDefault(t *testing.T) {
	s := NewSession()
	if _, err := s.Run(context.Background(), storeTestReqs()[0]); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Store != nil {
		t.Fatal("store stats present without WithStore")
	}
}

// TestStoreSharedAcrossSessionsConcurrently runs two sessions against the
// same directory at once (the cross-process race, in-process); run under
// -race in CI.
func TestStoreSharedAcrossSessionsConcurrently(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := storeTestReqs()

	done := make(chan []*Result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s := NewSession(WithStore(dir))
			res, err := s.RunGrid(ctx, reqs)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- res
		}()
	}
	a, b := <-done, <-done
	if a == nil || b == nil {
		t.Fatal("a racing session failed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("racing sessions disagree on results")
	}
}
