package sim

import (
	"fmt"
	"maps"

	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/program"
)

// Breakdown classifies committed loads by predicted-vs-actual dependence
// outcome, the four cells of the paper's Table 8.  Indexing is
// [predicted][actual] with 0 = no dependence, 1 = dependence; it encodes to
// JSON as a nested array [[n/n, n/y], [y/n, y/y]].
type Breakdown [2][2]uint64

// Total returns the number of classified loads.
func (b Breakdown) Total() uint64 { return b[0][0] + b[0][1] + b[1][0] + b[1][1] }

// Percent returns the percentage of loads in the given cell.
func (b Breakdown) Percent(predicted, actual int) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b[predicted][actual]) / float64(t)
}

// MemDepStats mirrors the MDPT/MDST system counters.
type MemDepStats struct {
	LoadQueries             uint64 `json:"load_queries"`              // LoadQueries counts MDPT lookups made by issuing loads.
	LoadsPredictedDependent uint64 `json:"loads_predicted_dependent"` // LoadsPredictedDependent counts loads the MDPT predicted dependent.
	LoadsMadeToWait         uint64 `json:"loads_made_to_wait"`        // LoadsMadeToWait counts predicted loads that allocated an MDST entry and waited.
	LoadsSignalledEarly     uint64 `json:"loads_signalled_early"`     // LoadsSignalledEarly counts loads whose producing store had already signalled.
	StoreQueries            uint64 `json:"store_queries"`             // StoreQueries counts MDPT lookups made by issuing stores.
	StoresSignalled         uint64 `json:"stores_signalled"`          // StoresSignalled counts stores that signalled a waiting dependence.
	LoadsReleasedByStore    uint64 `json:"loads_released_by_store"`   // LoadsReleasedByStore counts waiting loads released by their store's signal.
	LoadsReleasedStale      uint64 `json:"loads_released_stale"`      // LoadsReleasedStale counts waiting loads released without a matching signal.
	Misspeculations         uint64 `json:"misspeculations"`           // Misspeculations counts dependence violations the predictor failed to avoid.
	ESyncFiltered           uint64 `json:"esync_filtered"`            // ESyncFiltered counts waits the ESYNC policy's confidence filter suppressed.
}

// ARBStats mirrors the address resolution buffer counters.
type ARBStats struct {
	Loads      uint64 `json:"loads"`       // Loads counts load addresses resolved through the ARB.
	Stores     uint64 `json:"stores"`      // Stores counts store addresses resolved through the ARB.
	Violations uint64 `json:"violations"`  // Violations counts store→load order violations the ARB detected.
	StallsFull uint64 `json:"stalls_full"` // StallsFull counts cycles an access stalled on a full ARB.
}

// CacheStats mirrors the memory hierarchy counters.
type CacheStats struct {
	InstrAccesses uint64 `json:"instr_accesses"` // InstrAccesses counts instruction-cache accesses.
	InstrMisses   uint64 `json:"instr_misses"`   // InstrMisses counts instruction-cache misses.
	DataAccesses  uint64 `json:"data_accesses"`  // DataAccesses counts data-cache accesses.
	DataMisses    uint64 `json:"data_misses"`    // DataMisses counts data-cache misses.
	BusTransfers  uint64 `json:"bus_transfers"`  // BusTransfers counts memory-bus block transfers.
	BusWait       uint64 `json:"bus_wait"`       // BusWait accumulates cycles spent waiting for the bus.
	BankWait      uint64 `json:"bank_wait"`      // BankWait accumulates cycles spent waiting on a busy cache bank.
}

// SequencerStats mirrors the task sequencer counters.
type SequencerStats struct {
	TaskDispatches   uint64  `json:"task_dispatches"`    // TaskDispatches counts tasks assigned to processing units.
	Mispredictions   uint64  `json:"mispredictions"`     // Mispredictions counts next-task predictions that squashed.
	DescriptorMisses uint64  `json:"descriptor_misses"`  // DescriptorMisses counts task-descriptor cache misses.
	PredictorAcc     float64 `json:"predictor_accuracy"` // PredictorAcc is the next-task predictor hit rate in [0, 1].
}

// PairCount is one static store→load dependence pair with its observed event
// count, annotated with the static instruction indices and disassembled text
// so clients need no access to the program image.
type PairCount struct {
	StorePC    uint64 `json:"store_pc"`    // StorePC is the store's program counter.
	LoadPC     uint64 `json:"load_pc"`     // LoadPC is the load's program counter.
	StoreIndex int    `json:"store_index"` // StoreIndex is the store's static instruction index.
	LoadIndex  int    `json:"load_index"`  // LoadIndex is the load's static instruction index.
	Store      string `json:"store"`       // Store is the store's disassembled text.
	Load       string `json:"load"`        // Load is the load's disassembled text.
	Count      uint64 `json:"count"`       // Count is how many times the pair's event occurred.
}

// Result is the response to one simulation Request.  Request echoes the
// normalized request the result answers (defaults applied, enums
// canonicalized, effective table geometry).
type Result struct {
	// Request echoes the normalized request this result answers.
	Request Request `json:"request"`

	// Timing.
	Cycles int64   `json:"cycles"` // Cycles is the simulated execution time.
	IPC    float64 `json:"ipc"`    // IPC is committed instructions per cycle.

	// Committed work (identical across policies for the same work item).
	Instructions uint64  `json:"instructions"`  // Instructions counts committed instructions.
	Loads        uint64  `json:"loads"`         // Loads counts committed loads.
	Stores       uint64  `json:"stores"`        // Stores counts committed stores.
	Tasks        uint64  `json:"tasks"`         // Tasks counts committed Multiscalar tasks.
	AvgTaskSize  float64 `json:"avg_task_size"` // AvgTaskSize is the mean dynamic instructions per task.

	// Speculation outcomes.
	Misspeculations         uint64  `json:"misspeculations"`           // Misspeculations counts memory dependence violations.
	MisspecsPerLoad         float64 `json:"misspecs_per_load"`         // MisspecsPerLoad is Misspeculations per committed load.
	Squashes                uint64  `json:"squashes"`                  // Squashes counts task squashes triggered by violations.
	SquashedInstructions    uint64  `json:"squashed_instructions"`     // SquashedInstructions counts instructions discarded by squashes.
	LoadsWaited             uint64  `json:"loads_waited"`              // LoadsWaited counts loads the policy made wait for a store.
	WaitCycles              uint64  `json:"wait_cycles"`               // WaitCycles accumulates cycles loads spent waiting.
	FalseDependenceReleases uint64  `json:"false_dependence_releases"` // FalseDependenceReleases counts waits for dependences that never materialized.
	ARBBypasses             uint64  `json:"arb_bypasses"`              // ARBBypasses counts loads satisfied by store-to-load forwarding.

	// Breakdown classifies committed loads for Table 8 (meaningful for the
	// predictor-driven policies).
	Breakdown Breakdown `json:"breakdown"`

	// Subsystem counters.
	MemDep    MemDepStats    `json:"memdep"`    // MemDep is the MDPT/MDST predictor counters.
	ARB       ARBStats       `json:"arb"`       // ARB is the address resolution buffer counters.
	Cache     CacheStats     `json:"cache"`     // Cache is the memory hierarchy counters.
	Sequencer SequencerStats `json:"sequencer"` // Sequencer is the task sequencer counters.

	// DDCMissRate reports, for each size in Request.DDCSizes, the percentage
	// of mis-speculations whose static pair missed in a DDC of that size.
	DDCMissRate map[int]float64 `json:"ddc_miss_rate,omitempty"`

	// MisspecPairs lists the detected violations per static store→load pair,
	// ordered by decreasing count (ties broken by PC, deterministically).
	MisspecPairs []PairCount `json:"misspec_pairs,omitempty"`
}

// UsesPredictor reports whether the result's policy drives the MDPT/MDST
// hardware (and hence whether Breakdown and MemDep are meaningful).
func (r *Result) UsesPredictor() bool {
	k, err := r.Request.Policy.kind()
	return err == nil && k.UsesPredictor()
}

// SpeedupOver returns the percentage speedup of r relative to base (positive
// when r is faster).
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(r.Cycles) - 1)
}

// newResult converts an internal simulation result into the public shape.
// prog and item annotate the mis-speculated pairs and the task structure;
// either may be nil (uncached benchmarking runs skip the annotation).
func newResult(req Request, res multiscalar.Result, item *multiscalar.WorkItem, prog *program.Program) *Result {
	out := &Result{
		Request: req,

		Cycles: res.Cycles,
		IPC:    res.IPC(),

		Instructions: res.Instructions,
		Loads:        res.Loads,
		Stores:       res.Stores,
		Tasks:        res.Tasks,

		Misspeculations:         res.Misspeculations,
		MisspecsPerLoad:         res.MisspecsPerCommittedLoad(),
		Squashes:                res.Squashes,
		SquashedInstructions:    res.SquashedInstructions,
		LoadsWaited:             res.LoadsWaited,
		WaitCycles:              res.WaitCycles,
		FalseDependenceReleases: res.FalseDependenceReleases,
		ARBBypasses:             res.ARBBypasses,

		Breakdown: Breakdown(res.Breakdown),

		MemDep:    MemDepStats(res.MemDep),
		ARB:       ARBStats(res.ARB),
		Cache:     CacheStats(res.Cache),
		Sequencer: SequencerStats(res.Sequencer),
	}
	if item != nil {
		out.AvgTaskSize = item.AvgTaskSize()
	}
	if len(res.DDCMissRate) > 0 {
		out.DDCMissRate = make(map[int]float64, len(res.DDCMissRate))
		maps.Copy(out.DDCMissRate, res.DDCMissRate)
	}
	out.MisspecPairs = annotatePairs(res.MisspecPairs, prog)
	return out
}

// annotatePairs flattens a pair→count map into the public, deterministically
// ordered and (when prog is available) disassembly-annotated form.
func annotatePairs(counts map[memdep.PairKey]uint64, prog *program.Program) []PairCount {
	if len(counts) == 0 {
		return nil
	}
	out := make([]PairCount, 0, len(counts))
	for _, pc := range memdep.SortedPairCounts(counts) {
		p := PairCount{StorePC: pc.Pair.StorePC, LoadPC: pc.Pair.LoadPC, Count: pc.N}
		if prog != nil {
			p.StoreIndex = prog.Index(pc.Pair.StorePC)
			p.LoadIndex = prog.Index(pc.Pair.LoadPC)
			p.Store = fmt.Sprint(prog.Code[p.StoreIndex])
			p.Load = fmt.Sprint(prog.Code[p.LoadIndex])
		}
		out = append(out, p)
	}
	return out
}
