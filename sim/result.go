package sim

import (
	"fmt"
	"maps"

	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/program"
)

// Breakdown classifies committed loads by predicted-vs-actual dependence
// outcome, the four cells of the paper's Table 8.  Indexing is
// [predicted][actual] with 0 = no dependence, 1 = dependence; it encodes to
// JSON as a nested array [[n/n, n/y], [y/n, y/y]].
type Breakdown [2][2]uint64

// Total returns the number of classified loads.
func (b Breakdown) Total() uint64 { return b[0][0] + b[0][1] + b[1][0] + b[1][1] }

// Percent returns the percentage of loads in the given cell.
func (b Breakdown) Percent(predicted, actual int) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b[predicted][actual]) / float64(t)
}

// MemDepStats mirrors the MDPT/MDST system counters.
type MemDepStats struct {
	LoadQueries             uint64 `json:"load_queries"`
	LoadsPredictedDependent uint64 `json:"loads_predicted_dependent"`
	LoadsMadeToWait         uint64 `json:"loads_made_to_wait"`
	LoadsSignalledEarly     uint64 `json:"loads_signalled_early"`
	StoreQueries            uint64 `json:"store_queries"`
	StoresSignalled         uint64 `json:"stores_signalled"`
	LoadsReleasedByStore    uint64 `json:"loads_released_by_store"`
	LoadsReleasedStale      uint64 `json:"loads_released_stale"`
	Misspeculations         uint64 `json:"misspeculations"`
	ESyncFiltered           uint64 `json:"esync_filtered"`
}

// ARBStats mirrors the address resolution buffer counters.
type ARBStats struct {
	Loads      uint64 `json:"loads"`
	Stores     uint64 `json:"stores"`
	Violations uint64 `json:"violations"`
	StallsFull uint64 `json:"stalls_full"`
}

// CacheStats mirrors the memory hierarchy counters.
type CacheStats struct {
	InstrAccesses uint64 `json:"instr_accesses"`
	InstrMisses   uint64 `json:"instr_misses"`
	DataAccesses  uint64 `json:"data_accesses"`
	DataMisses    uint64 `json:"data_misses"`
	BusTransfers  uint64 `json:"bus_transfers"`
	BusWait       uint64 `json:"bus_wait"`
	BankWait      uint64 `json:"bank_wait"`
}

// SequencerStats mirrors the task sequencer counters.
type SequencerStats struct {
	TaskDispatches   uint64  `json:"task_dispatches"`
	Mispredictions   uint64  `json:"mispredictions"`
	DescriptorMisses uint64  `json:"descriptor_misses"`
	PredictorAcc     float64 `json:"predictor_accuracy"`
}

// PairCount is one static store→load dependence pair with its observed event
// count, annotated with the static instruction indices and disassembled text
// so clients need no access to the program image.
type PairCount struct {
	StorePC    uint64 `json:"store_pc"`
	LoadPC     uint64 `json:"load_pc"`
	StoreIndex int    `json:"store_index"`
	LoadIndex  int    `json:"load_index"`
	Store      string `json:"store"`
	Load       string `json:"load"`
	Count      uint64 `json:"count"`
}

// Result is the response to one simulation Request.  Request echoes the
// normalized request the result answers (defaults applied, enums
// canonicalized, effective table geometry).
type Result struct {
	Request Request `json:"request"`

	// Timing.
	Cycles int64   `json:"cycles"`
	IPC    float64 `json:"ipc"`

	// Committed work (identical across policies for the same work item).
	Instructions uint64  `json:"instructions"`
	Loads        uint64  `json:"loads"`
	Stores       uint64  `json:"stores"`
	Tasks        uint64  `json:"tasks"`
	AvgTaskSize  float64 `json:"avg_task_size"`

	// Speculation outcomes.
	Misspeculations         uint64  `json:"misspeculations"`
	MisspecsPerLoad         float64 `json:"misspecs_per_load"`
	Squashes                uint64  `json:"squashes"`
	SquashedInstructions    uint64  `json:"squashed_instructions"`
	LoadsWaited             uint64  `json:"loads_waited"`
	WaitCycles              uint64  `json:"wait_cycles"`
	FalseDependenceReleases uint64  `json:"false_dependence_releases"`
	ARBBypasses             uint64  `json:"arb_bypasses"`

	// Breakdown classifies committed loads for Table 8 (meaningful for the
	// predictor-driven policies).
	Breakdown Breakdown `json:"breakdown"`

	// Subsystem counters.
	MemDep    MemDepStats    `json:"memdep"`
	ARB       ARBStats       `json:"arb"`
	Cache     CacheStats     `json:"cache"`
	Sequencer SequencerStats `json:"sequencer"`

	// DDCMissRate reports, for each size in Request.DDCSizes, the percentage
	// of mis-speculations whose static pair missed in a DDC of that size.
	DDCMissRate map[int]float64 `json:"ddc_miss_rate,omitempty"`

	// MisspecPairs lists the detected violations per static store→load pair,
	// ordered by decreasing count (ties broken by PC, deterministically).
	MisspecPairs []PairCount `json:"misspec_pairs,omitempty"`
}

// UsesPredictor reports whether the result's policy drives the MDPT/MDST
// hardware (and hence whether Breakdown and MemDep are meaningful).
func (r *Result) UsesPredictor() bool {
	k, err := r.Request.Policy.kind()
	return err == nil && k.UsesPredictor()
}

// SpeedupOver returns the percentage speedup of r relative to base (positive
// when r is faster).
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(r.Cycles) - 1)
}

// newResult converts an internal simulation result into the public shape.
// prog and item annotate the mis-speculated pairs and the task structure;
// either may be nil (uncached benchmarking runs skip the annotation).
func newResult(req Request, res multiscalar.Result, item *multiscalar.WorkItem, prog *program.Program) *Result {
	out := &Result{
		Request: req,

		Cycles: res.Cycles,
		IPC:    res.IPC(),

		Instructions: res.Instructions,
		Loads:        res.Loads,
		Stores:       res.Stores,
		Tasks:        res.Tasks,

		Misspeculations:         res.Misspeculations,
		MisspecsPerLoad:         res.MisspecsPerCommittedLoad(),
		Squashes:                res.Squashes,
		SquashedInstructions:    res.SquashedInstructions,
		LoadsWaited:             res.LoadsWaited,
		WaitCycles:              res.WaitCycles,
		FalseDependenceReleases: res.FalseDependenceReleases,
		ARBBypasses:             res.ARBBypasses,

		Breakdown: Breakdown(res.Breakdown),

		MemDep:    MemDepStats(res.MemDep),
		ARB:       ARBStats(res.ARB),
		Cache:     CacheStats(res.Cache),
		Sequencer: SequencerStats(res.Sequencer),
	}
	if item != nil {
		out.AvgTaskSize = item.AvgTaskSize()
	}
	if len(res.DDCMissRate) > 0 {
		out.DDCMissRate = make(map[int]float64, len(res.DDCMissRate))
		maps.Copy(out.DDCMissRate, res.DDCMissRate)
	}
	out.MisspecPairs = annotatePairs(res.MisspecPairs, prog)
	return out
}

// annotatePairs flattens a pair→count map into the public, deterministically
// ordered and (when prog is available) disassembly-annotated form.
func annotatePairs(counts map[memdep.PairKey]uint64, prog *program.Program) []PairCount {
	if len(counts) == 0 {
		return nil
	}
	out := make([]PairCount, 0, len(counts))
	for _, pc := range memdep.SortedPairCounts(counts) {
		p := PairCount{StorePC: pc.Pair.StorePC, LoadPC: pc.Pair.LoadPC, Count: pc.N}
		if prog != nil {
			p.StoreIndex = prog.Index(pc.Pair.StorePC)
			p.LoadIndex = prog.Index(pc.Pair.LoadPC)
			p.Store = fmt.Sprint(prog.Code[p.StoreIndex])
			p.Load = fmt.Sprint(prog.Code[p.LoadIndex])
		}
		out = append(out, p)
	}
	return out
}
