package sim

import (
	"encoding/json"
	"fmt"

	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// Request describes one Multiscalar timing simulation.  The zero value of
// every field except the workload (Bench or Synth) selects the paper's
// evaluated configuration (8 stages, ESYNC, a 64-entry fully associative
// MDPT, the event-driven core, the benchmark's default scale, an unbounded
// run), so the minimal requests are {"bench": "compress"} and
// {"synth": {"seed": 1}}.
type Request struct {
	// Bench names the benchmark to simulate (Benchmarks lists the committed
	// suite).  Exactly one of Bench or Synth must be set.
	Bench string `json:"bench,omitempty"`
	// Synth describes an inline synthetic workload instead of a named
	// benchmark: the generated program runs through the same trace,
	// preprocess and simulation pipeline, memoized under the spec's
	// canonical JSON (including the seed).
	Synth *SynthSpec `json:"synth,omitempty"`
	// Stages is the number of processing units (0 = 8, the paper's main
	// configuration; the paper also evaluates 4).
	Stages int `json:"stages,omitempty"`
	// Policy selects the data dependence speculation policy ("" = ESYNC).
	Policy Policy `json:"policy,omitempty"`
	// Core selects the timing core ("" = the event-driven default).
	Core CoreMode `json:"core,omitempty"`
	// Scale overrides the workload scale (0 = the benchmark's default).
	Scale int `json:"scale,omitempty"`
	// MaxInstructions caps the number of committed instructions (0 = run the
	// benchmark to completion).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// MDPTEntries is the prediction-table size (0 = 64, the paper's value).
	MDPTEntries int `json:"mdpt_entries,omitempty"`
	// Predictor selects the prediction-table organization ("" = the paper's
	// fully associative MDPT).
	Predictor TableKind `json:"predictor,omitempty"`
	// MDPTWays is the associativity of the setassoc/storeset organizations
	// (0 = the memdep default of 4; ignored for the fully associative table).
	MDPTWays int `json:"mdpt_ways,omitempty"`
	// DDCSizes optionally feeds the stream of mis-speculated static pairs
	// into data dependence caches of these sizes (the Table 7 study); the
	// per-size miss rates come back in Result.DDCMissRate.
	DDCSizes []int `json:"ddc_sizes,omitempty"`
}

// Normalize returns the request with every defaulted field filled in and
// every enum canonicalized, without touching the receiver.  Normalize of an
// invalid request leaves the offending fields as they are; Validate reports
// them.
func (r Request) Normalize() Request {
	if r.Stages == 0 {
		r.Stages = 8
	}
	if p, err := ParsePolicy(string(defaultedPolicy(r.Policy))); err == nil {
		r.Policy = p
	}
	if m, err := ParseCoreMode(string(defaultedCore(r.Core))); err == nil {
		r.Core = m
	}
	if t, err := ParseTableKind(string(defaultedTable(r.Predictor))); err == nil {
		r.Predictor = t
	}
	if r.MDPTEntries == 0 {
		r.MDPTEntries = 64
	}
	if r.Synth != nil {
		r.Synth = r.Synth.Normalize()
		if r.Scale <= 0 {
			r.Scale = 1
		}
	} else if r.Scale <= 0 {
		if w, err := workload.Get(r.Bench); err == nil {
			r.Scale = w.DefaultScale
		}
	}
	// Echo the effective (clamped) table geometry, matching what a
	// constructed predictor actually runs with.
	if table, err := r.Predictor.kind(); err == nil {
		eff := memdep.Config{Entries: r.MDPTEntries, Table: table, Ways: r.MDPTWays}.Effective()
		r.MDPTWays = eff.Ways
	}
	return r
}

// CanonicalJSON returns the canonical JSON encoding of the normalized
// request: two requests describing the same simulation -- whatever spelling
// their enums used and whichever defaulted fields they left zero -- encode
// identically.  It is the request's routing and sharing identity: the fleet
// coordinator consistent-hashes it to pick the owning worker, which keeps
// repeats of a request on the worker whose session cache (and persistent
// store) already holds the result.
func (r Request) CanonicalJSON() string {
	data, err := json.Marshal(r.Normalize())
	if err != nil {
		// A Request holds only strings, numbers and slices of both; the
		// encoder cannot fail on it.
		panic(err)
	}
	return string(data)
}

func defaultedPolicy(p Policy) Policy {
	if p == "" {
		return PolicyESync
	}
	return p
}

func defaultedCore(m CoreMode) CoreMode {
	if m == "" {
		return CoreEvent
	}
	return m
}

func defaultedTable(t TableKind) TableKind {
	if t == "" {
		return TableFullAssoc
	}
	return t
}

// Validate reports every invalid field of the request as a *ValidationError
// (nil when the request is well-formed).
func (r Request) Validate() error {
	v := &ValidationError{}
	r.Workload().validate(v)
	if r.Stages < 0 {
		v.add("stages", fmt.Sprint(r.Stages), "must not be negative")
	} else if r.Stages > 64 {
		v.add("stages", fmt.Sprint(r.Stages), "unreasonably large (max 64)")
	}
	if _, err := r.Policy.kind(); err != nil {
		v.add("policy", string(r.Policy), "unknown policy")
	}
	if _, err := r.Core.mode(); err != nil {
		v.add("core", string(r.Core), "unknown core mode")
	}
	if _, err := r.Predictor.kind(); err != nil {
		v.add("predictor", string(r.Predictor), "unknown predictor table")
	}
	if r.Scale < 0 {
		v.add("scale", fmt.Sprint(r.Scale), "must not be negative")
	}
	checkSynthScale(r.Synth, r.Scale, v)
	if r.MDPTEntries < 0 {
		v.add("mdpt_entries", fmt.Sprint(r.MDPTEntries), "must not be negative")
	}
	if r.MDPTWays < 0 {
		v.add("mdpt_ways", fmt.Sprint(r.MDPTWays), "must not be negative")
	}
	for _, size := range r.DDCSizes {
		if size <= 0 {
			v.add("ddc_sizes", fmt.Sprint(size), "sizes must be positive")
		}
	}
	if len(v.Fields) > 0 {
		return v
	}
	// Field values are individually sane; cross-check the assembled timing
	// configuration (counter geometry and the like) the same way the
	// simulator will.
	cfg, err := r.config()
	if err != nil {
		v.add("request", "", err.Error())
		return v
	}
	if err := cfg.Validate(); err != nil {
		v.add("request", "", err.Error())
	}
	return v.errs()
}

// config assembles the internal timing-simulator configuration, exactly as
// the pre-facade CLIs did from their flags.
func (r Request) config() (multiscalar.Config, error) {
	pol, err := r.Policy.kind()
	if err != nil {
		return multiscalar.Config{}, err
	}
	table, err := r.Predictor.kind()
	if err != nil {
		return multiscalar.Config{}, err
	}
	core, err := r.Core.mode()
	if err != nil {
		return multiscalar.Config{}, err
	}
	stages := r.Stages
	if stages == 0 {
		stages = 8
	}
	entries := r.MDPTEntries
	if entries == 0 {
		entries = 64
	}
	cfg := multiscalar.DefaultConfig(stages, pol)
	cfg.MemDep.Entries = entries
	cfg.MemDep.Table = table
	cfg.MemDep.Ways = r.MDPTWays
	cfg.Core = core
	cfg.DDCSizes = r.DDCSizes
	return cfg, nil
}

// Workload returns the request's workload identity.
func (r Request) Workload() Workload {
	return Workload{Bench: r.Bench, Synth: r.Synth}
}

// WorkloadName returns the display name of the request's workload: the
// benchmark name, or the synthetic spec's (defaulted) name.
func (r Request) WorkloadName() string { return r.Workload().Name() }

// scale resolves the effective workload scale.
func (r Request) scale() (int, error) {
	if r.Synth != nil {
		if r.Scale > 0 {
			return r.Scale, nil
		}
		return 1, nil
	}
	w, err := workload.Get(r.Bench)
	if err != nil {
		return 0, err
	}
	if r.Scale > 0 {
		return r.Scale, nil
	}
	return w.DefaultScale, nil
}

// traceConfig returns the functional-run bounds of the request.
func (r Request) traceConfig() trace.Config {
	return trace.Config{MaxInstructions: r.MaxInstructions}
}
