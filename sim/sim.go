// Package sim is the public facade of the memdep simulator: a stable,
// JSON-serializable request/response API over the reproduction of "Dynamic
// Speculation and Synchronization of Data Dependences" (Moshovos, Breach,
// Vijaykumar, Sohi; ISCA 1997).
//
// The layering is deliberate:
//
//	sim (public requests, results, sessions)
//	 └── internal/engine (parallel job scheduling, memoized singleflight cache)
//	      └── internal/{workload,trace,window,multiscalar,memdep,...} (simulators)
//
// Everything below this package stays internal: the simulator packages trade
// API stability for the freedom to restructure hot paths (the event-driven
// timing core, the predictor organizations), while this package commits to a
// versioned surface that other programs -- and the cmd/memdep-server HTTP
// service -- can depend on.
//
// The entry point is a Session, which wraps one job engine and its memoized
// cache:
//
//	s := sim.NewSession()
//	res, err := s.Run(ctx, sim.Request{Bench: "compress", Stages: 8, Policy: sim.PolicyESync})
//
// Grid requests fan out through the engine's worker pool and share the
// session cache, so overlapping configurations (the same benchmark under
// several policies, for example) preprocess the workload exactly once:
//
//	results, err := s.RunGrid(ctx, requests)
//
// Every request, result and enum in this package round-trips through
// encoding/json, which is what the HTTP service serves directly.
package sim

import (
	"fmt"
	"strings"

	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
)

// Policy identifies a data dependence speculation policy by the paper's name.
// The zero value selects the session default (ESYNC).  Parsing and JSON
// decoding are case-insensitive and canonicalize to the paper's spelling.
type Policy string

// The policies of the paper's evaluation (sections 5.4 and 5.5).
const (
	// PolicyNever performs no data dependence speculation.
	PolicyNever Policy = "NEVER"
	// PolicyAlways speculates blindly; violations squash the offending task.
	PolicyAlways Policy = "ALWAYS"
	// PolicyWait is selective speculation with perfect dependence prediction.
	PolicyWait Policy = "WAIT"
	// PolicyPerfectSync is ideal speculation and synchronization.  "PERFECT-SYNC"
	// and "PERFECTSYNC" parse to the same policy.
	PolicyPerfectSync Policy = "PSYNC"
	// PolicySync is the MDPT/MDST mechanism with the up/down counter predictor.
	PolicySync Policy = "SYNC"
	// PolicyESync is the mechanism with the enhanced (counter + producing task
	// PC) predictor.
	PolicyESync Policy = "ESYNC"
)

// Policies returns every policy in the paper's presentation order.
func Policies() []Policy {
	return []Policy{PolicyNever, PolicyAlways, PolicyWait, PolicyPerfectSync, PolicySync, PolicyESync}
}

// ParsePolicy parses a policy name case-insensitively, accepting the
// long-form aliases of the perfect-synchronization oracle, and returns the
// canonical spelling.
func ParsePolicy(s string) (Policy, error) {
	k, err := policy.Parse(s)
	if err != nil {
		return "", err
	}
	return Policy(k.String()), nil
}

// String returns the canonical spelling.
func (p Policy) String() string { return string(p) }

// Description returns a one-line description of the policy.
func (p Policy) Description() string {
	k, err := p.kind()
	if err != nil {
		return "unknown policy"
	}
	return k.Description()
}

// UnmarshalText implements encoding.TextUnmarshaler: JSON decoding
// canonicalizes any spelling ParsePolicy accepts.  Unknown names are kept
// as-is and rejected by Request.Validate, so a malformed request reports
// every bad field together instead of dying on the first decode error.
func (p *Policy) UnmarshalText(text []byte) error {
	if v, err := ParsePolicy(string(text)); err == nil {
		*p = v
	} else {
		*p = Policy(text)
	}
	return nil
}

// kind converts to the internal policy enum; the empty value selects the
// default policy (ESYNC).
func (p Policy) kind() (policy.Kind, error) {
	if p == "" {
		p = PolicyESync
	}
	return policy.Parse(string(p))
}

// TableKind selects the prediction-table organization.  The zero value
// selects the session default (the paper's fully associative MDPT).
type TableKind string

// The prediction-table organizations.
const (
	// TableFullAssoc is the paper's fully associative, LRU-managed MDPT.
	TableFullAssoc TableKind = "full"
	// TableSetAssoc is the set-associative, load-PC-indexed organization.
	TableSetAssoc TableKind = "setassoc"
	// TableStoreSet is the store-set-style organization.
	TableStoreSet TableKind = "storeset"
)

// TableKinds returns every organization.
func TableKinds() []TableKind { return []TableKind{TableFullAssoc, TableSetAssoc, TableStoreSet} }

// ParseTableKind parses an organization name case-insensitively and returns
// the canonical spelling.
func ParseTableKind(s string) (TableKind, error) {
	k, err := memdep.ParseTableKind(s)
	if err != nil {
		return "", err
	}
	return TableKind(k.String()), nil
}

// String returns the canonical spelling.
func (t TableKind) String() string { return string(t) }

// UnmarshalText implements encoding.TextUnmarshaler: decoding canonicalizes
// known spellings and defers unknown ones to Request.Validate.
func (t *TableKind) UnmarshalText(text []byte) error {
	if v, err := ParseTableKind(string(text)); err == nil {
		*t = v
	} else {
		*t = TableKind(text)
	}
	return nil
}

// kind converts to the internal table enum; the empty value selects the
// fully associative default.
func (t TableKind) kind() (memdep.TableKind, error) {
	if t == "" {
		t = TableFullAssoc
	}
	return memdep.ParseTableKind(string(t))
}

// CoreMode selects the timing simulator's run-loop implementation.  Both
// cores produce identical results; the event-driven core (the zero-value
// default) is simply faster.  The stepped reference core exists for
// equivalence testing.
type CoreMode string

// The timing cores.
const (
	// CoreEvent advances the clock directly to the earliest pending event.
	CoreEvent CoreMode = "event"
	// CoreStepped polls every in-flight task once per cycle.
	CoreStepped CoreMode = "stepped"
)

// CoreModes returns both cores.
func CoreModes() []CoreMode { return []CoreMode{CoreEvent, CoreStepped} }

// ParseCoreMode parses a core name case-insensitively and returns the
// canonical spelling.
func ParseCoreMode(s string) (CoreMode, error) {
	m, err := multiscalar.ParseCoreMode(s)
	if err != nil {
		return "", err
	}
	return CoreMode(m.String()), nil
}

// String returns the canonical spelling.
func (m CoreMode) String() string { return string(m) }

// UnmarshalText implements encoding.TextUnmarshaler: decoding canonicalizes
// known spellings and defers unknown ones to Request.Validate.
func (m *CoreMode) UnmarshalText(text []byte) error {
	if v, err := ParseCoreMode(string(text)); err == nil {
		*m = v
	} else {
		*m = CoreMode(text)
	}
	return nil
}

// mode converts to the internal core enum; the empty value selects the
// event-driven default.
func (m CoreMode) mode() (multiscalar.CoreMode, error) {
	if m == "" {
		m = CoreEvent
	}
	return multiscalar.ParseCoreMode(string(m))
}

// FieldError describes one invalid Request field.
type FieldError struct {
	// Field is the JSON name of the offending field.
	Field string `json:"field"`
	// Value is the rejected value, rendered as a string.
	Value string `json:"value"`
	// Msg says what is wrong with it.
	Msg string `json:"msg"`
}

// Error implements the error interface.
func (e FieldError) Error() string {
	return fmt.Sprintf("%s: %s (got %q)", e.Field, e.Msg, e.Value)
}

// ValidationError collects every invalid field of a Request.  Callers that
// want per-field detail (the HTTP service renders them as structured JSON)
// unwrap it with errors.As.
type ValidationError struct {
	// Fields lists the per-field failures, one entry per invalid field.
	Fields []FieldError `json:"fields"`
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "invalid request: " + strings.Join(msgs, "; ")
}

// errs returns nil when no field failed, so callers can `return v.errs()`.
func (e *ValidationError) errs() error {
	if len(e.Fields) == 0 {
		return nil
	}
	return e
}

func (e *ValidationError) add(field, value, msg string) {
	e.Fields = append(e.Fields, FieldError{Field: field, Value: value, Msg: msg})
}
