package sim

import (
	"context"
	"fmt"
	"maps"

	"memdep/internal/engine"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/window"
)

// TraceRequest describes a functional (non-timing) inspection of a
// workload: the committed instruction stream of the paper's "total order".
type TraceRequest struct {
	// Bench names the benchmark.  Exactly one of Bench or Synth must be set.
	Bench string `json:"bench,omitempty"`
	// Synth describes an inline synthetic workload instead of a named
	// benchmark.
	Synth *SynthSpec `json:"synth,omitempty"`
	// Scale overrides the workload scale (0 = the benchmark's default).
	Scale int `json:"scale,omitempty"`
	// MaxInstructions caps the committed instructions (0 = unlimited).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
}

// validate resolves the workload's metadata, effective scale and program job.
func (r TraceRequest) validate() (workloadMeta, error) {
	return resolveWorkload(r.Bench, r.Synth, r.Scale)
}

// TraceSummary reports the static shape and committed dynamic stream of a
// benchmark.
type TraceSummary struct {
	Bench       string `json:"bench"`       // Bench is the workload's canonical name.
	Suite       string `json:"suite"`       // Suite is the benchmark family the workload belongs to.
	Description string `json:"description"` // Description is the workload's one-line synopsis.
	Scale       int    `json:"scale"`       // Scale is the effective iteration-scale factor.

	StaticInstructions int `json:"static_instructions"` // StaticInstructions counts instructions in the program image.
	StaticLoads        int `json:"static_loads"`        // StaticLoads counts static load instructions.
	StaticStores       int `json:"static_stores"`       // StaticStores counts static store instructions.

	Instructions uint64 `json:"instructions"` // Instructions counts committed dynamic instructions.
	Loads        uint64 `json:"loads"`        // Loads counts committed dynamic loads.
	Stores       uint64 `json:"stores"`       // Stores counts committed dynamic stores.
	Branches     uint64 `json:"branches"`     // Branches counts committed dynamic branches.
	Tasks        uint64 `json:"tasks"`        // Tasks counts committed Multiscalar tasks.
}

// AvgTaskSize returns the average dynamic task size in instructions.
func (s *TraceSummary) AvgTaskSize() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Tasks)
}

// Trace runs the benchmark on the functional simulator (memoized) and
// summarises it.
func (s *Session) Trace(ctx context.Context, req TraceRequest) (*TraceSummary, error) {
	m, err := req.validate()
	if err != nil {
		return nil, err
	}
	prog, err := engine.Resolve[*program.Program](ctx, s.eng, m.job)
	if err != nil {
		return nil, err
	}
	st, err := engine.Resolve[trace.Stats](ctx, s.eng, trace.RunJob{
		Program: m.job,
		Config:  trace.Config{MaxInstructions: req.MaxInstructions},
	})
	if err != nil {
		return nil, err
	}
	return &TraceSummary{
		Bench:              m.name,
		Suite:              m.suite,
		Description:        m.description,
		Scale:              m.scale,
		StaticInstructions: prog.Len(),
		StaticLoads:        len(prog.StaticLoads()),
		StaticStores:       len(prog.StaticStores()),
		Instructions:       st.Instructions,
		Loads:              st.Loads,
		Stores:             st.Stores,
		Branches:           st.Branches,
		Tasks:              st.Tasks,
	}, nil
}

// Disassemble returns the workload's full static disassembly.
func (s *Session) Disassemble(ctx context.Context, req TraceRequest) (string, error) {
	m, err := req.validate()
	if err != nil {
		return "", err
	}
	prog, err := engine.Resolve[*program.Program](ctx, s.eng, m.job)
	if err != nil {
		return "", err
	}
	return prog.Disassemble(), nil
}

// TaskSizeBucket is one row of the dynamic task-size histogram.
type TaskSizeBucket struct {
	// Label names the size range ("1-16", ..., "513+").
	Label string `json:"label"`
	// Tasks is the number of dynamic tasks in the range.
	Tasks int `json:"tasks"`
}

// taskSizeBuckets are the histogram ranges, matching the paper's discussion
// of task granularity.
var taskSizeBuckets = []struct {
	label string
	max   uint64
}{
	{"1-16", 16}, {"17-32", 32}, {"33-64", 64}, {"65-128", 128},
	{"129-256", 256}, {"257-512", 512}, {"513+", ^uint64(0)},
}

// TaskSizes histograms the benchmark's dynamic task sizes.  Every bucket is
// present in range order, including empty ones.
func (s *Session) TaskSizes(ctx context.Context, req TraceRequest) ([]TaskSizeBucket, error) {
	m, err := req.validate()
	if err != nil {
		return nil, err
	}
	prog, err := engine.Resolve[*program.Program](ctx, s.eng, m.job)
	if err != nil {
		return nil, err
	}
	sizes := map[uint64]uint64{}
	var current, count uint64
	_, err = trace.Run(prog, trace.Config{MaxInstructions: req.MaxInstructions}, func(d trace.DynInst) bool {
		if d.TaskStart && count > 0 {
			sizes[current] = count
			count = 0
		}
		current = d.TaskID
		count++
		return true
	})
	if err != nil {
		return nil, err
	}
	if count > 0 {
		sizes[current] = count
	}
	hist := make([]TaskSizeBucket, len(taskSizeBuckets))
	for i, b := range taskSizeBuckets {
		hist[i].Label = b.label
	}
	for _, n := range sizes { //lint:deterministic commutative bucket increments, keys unused
		for i, b := range taskSizeBuckets {
			if n <= b.max {
				hist[i].Tasks++
				break
			}
		}
	}
	return hist, nil
}

// WindowRequest describes an unrealistic-OOO window analysis (the paper's
// section 5.3): worst-case mis-speculations, static dependence coverage and
// DDC miss rates per window size.
type WindowRequest struct {
	// Bench names the benchmark.  Exactly one of Bench or Synth must be set.
	Bench string `json:"bench,omitempty"`
	// Synth describes an inline synthetic workload instead of a named
	// benchmark.
	Synth *SynthSpec `json:"synth,omitempty"`
	// Scale overrides the workload scale (0 = the benchmark's default).
	Scale int `json:"scale,omitempty"`
	// MaxInstructions caps the committed instructions (0 = unlimited).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// WindowSizes lists the instruction window sizes to analyse (nil = the
	// Tables 3-5 sizes 8..512).
	WindowSizes []int `json:"window_sizes,omitempty"`
	// DDCSizes lists the data dependence cache sizes to study (nil = the
	// Table 5 sizes 32, 128, 512).
	DDCSizes []int `json:"ddc_sizes,omitempty"`
}

// WindowResult reports the dependence statistics of one window size.
type WindowResult struct {
	WindowSize       int     `json:"window_size"`        // WindowSize is the instruction window size analysed.
	Loads            uint64  `json:"loads"`              // Loads counts loads observed in the window stream.
	Misspeculations  uint64  `json:"misspeculations"`    // Misspeculations counts dependence violations at this window size.
	MisspecsPerLoad  float64 `json:"misspecs_per_load"`  // MisspecsPerLoad is Misspeculations per load.
	StaticPairs      int     `json:"static_pairs"`       // StaticPairs counts distinct static store→load pairs observed.
	PairsForCoverage int     `json:"pairs_for_coverage"` // PairsForCoverage is how many top pairs cover 99.9% of violations.
	// DDCMissRate maps DDC size to its miss percentage.
	DDCMissRate map[int]float64 `json:"ddc_miss_rate,omitempty"`
	// Pairs lists the observed static dependences by decreasing frequency,
	// annotated with their disassembly.
	Pairs []PairCount `json:"pairs,omitempty"`
}

// Window runs the window analysis (memoized), one result per window size in
// increasing order.
func (s *Session) Window(ctx context.Context, req WindowRequest) ([]WindowResult, error) {
	grids, err := s.WindowGrid(ctx, []WindowRequest{req})
	if err != nil {
		return nil, err
	}
	return grids[0], nil
}

// WindowGrid runs several window analyses as one job set: the analyses fan
// out over the session's worker pool (one engine job each) and share the
// memoized cache.  Results are positional: results[i] answers reqs[i].
func (s *Session) WindowGrid(ctx context.Context, reqs []WindowRequest) ([][]WindowResult, error) {
	specs := make([]window.AnalyzeJob, len(reqs))
	b := s.eng.NewBatch()
	refs := make([]engine.Ref, len(reqs))
	for i, req := range reqs {
		m, err := TraceRequest{Bench: req.Bench, Synth: req.Synth, Scale: req.Scale}.validate()
		if err != nil {
			if len(reqs) > 1 {
				return nil, fmt.Errorf("request %d: %w", i, err)
			}
			return nil, err
		}
		specs[i] = window.AnalyzeJob{
			Program: m.job,
			Config: window.Config{
				WindowSizes: req.WindowSizes,
				DDCSizes:    req.DDCSizes,
				Trace:       trace.Config{MaxInstructions: req.MaxInstructions},
			},
		}
		refs[i] = b.Add(specs[i])
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}
	out := make([][]WindowResult, len(reqs))
	for i := range reqs {
		prog, err := engine.Resolve[*program.Program](ctx, s.eng, specs[i].Program)
		if err != nil {
			return nil, err
		}
		out[i] = convertWindowResults(engine.Get[[]window.Result](b, refs[i]), prog)
	}
	return out, nil
}

// convertWindowResults maps internal analysis results to the public shape.
func convertWindowResults(results []window.Result, prog *program.Program) []WindowResult {
	out := make([]WindowResult, len(results))
	for i, r := range results {
		out[i] = WindowResult{
			WindowSize:       r.WindowSize,
			Loads:            r.Loads,
			Misspeculations:  r.Misspeculations,
			MisspecsPerLoad:  r.MisspecRate(),
			StaticPairs:      r.StaticPairs,
			PairsForCoverage: r.PairsForCoverage,
			Pairs:            annotatePairs(r.PairCounts, prog),
		}
		if len(r.DDCMissRate) > 0 {
			rates := make(map[int]float64, len(r.DDCMissRate))
			maps.Copy(rates, r.DDCMissRate)
			out[i].DDCMissRate = rates
		}
	}
	return out
}

// DefaultWindowSizes returns the window sizes of the paper's Tables 3-5.
func DefaultWindowSizes() []int { return window.DefaultWindowSizes() }

// DefaultDDCSizes returns the DDC sizes of the paper's Table 5.
func DefaultDDCSizes() []int { return window.DefaultDDCSizes() }
