package sim

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/multiscalar"
	"memdep/internal/program"
	"memdep/internal/store"
	"memdep/internal/workload"
)

// Session is a handle on one simulation service: a job engine with every
// evaluation layer registered and a memoized result cache shared by every
// request that runs through it.  A Session is safe for concurrent use; the
// HTTP service serves all requests from one.
type Session struct {
	eng      *engine.Engine
	defaults Request
	storeDir string
	store    *store.Store
}

// Option configures a Session.
type Option func(*Session)

// WithWorkers sets the engine worker-pool size (0 or unset = GOMAXPROCS).
// Grid requests fan out over this pool; results are identical at every size.
func WithWorkers(n int) Option {
	return func(s *Session) { s.eng = experiments.NewEngine(n) }
}

// WithDefaults overlays the non-zero fields of req onto every request the
// session runs, before the package defaults apply.  Use it to pin a session
// to, say, a stepped-core or a bounded-instruction configuration.
func WithDefaults(req Request) Option {
	return func(s *Session) { s.defaults = req }
}

// WithStore layers a persistent, content-addressed result store rooted at
// dir beneath the session's in-memory cache: simulation results, built
// synthetic programs and preprocessed work items are read from disk on a
// memory miss and written behind on a compute, so repeated identical runs --
// across sessions, processes and CI jobs sharing the directory -- skip the
// recomputation entirely.  Warm results are byte-identical to cold ones.
// The directory is created on first write; corrupt or version-mismatched
// entries degrade to misses, never to failures.  An empty dir disables the
// store.
func WithStore(dir string) Option {
	return func(s *Session) { s.storeDir = dir }
}

// NewSession creates a session with a fresh engine and cache.  Construction
// only applies the option closures; the context belongs to Run.
//
//lint:noctx constructor, applies bounded option list
func NewSession(opts ...Option) *Session {
	s := &Session{}
	for _, opt := range opts {
		opt(s)
	}
	if s.eng == nil {
		s.eng = experiments.NewEngine(0)
	}
	if s.storeDir != "" {
		s.store = store.Open(s.storeDir, store.DefaultCodecs()...)
		s.eng.SetTier(s.store)
	}
	return s
}

// Stats is a snapshot of the session's engine counters.
type Stats struct {
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Executed counts jobs actually computed (misses of every cache tier).
	Executed uint64 `json:"executed"`
	// Hits counts jobs served from the in-memory cache or deduplicated onto
	// an in-flight computation.
	Hits uint64 `json:"hits"`
	// CachedJobs is the number of memoized jobs.
	CachedJobs int `json:"cached_jobs"`
	// Store snapshots the persistent second-tier cache, when the session
	// was opened with WithStore.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreCounters is the disk-tier traffic of one kind (or in aggregate).
type StoreCounters struct {
	// Hits counts results served from an intact on-disk object.
	Hits uint64 `json:"hits"`
	// Misses counts loads that found no current-version object.
	Misses uint64 `json:"misses"`
	// Bypassed counts loads of memory-only kinds (no codec registered).
	Bypassed uint64 `json:"bypassed"`
	// Corrupt counts undecodable objects, degraded to misses and rewritten.
	Corrupt uint64 `json:"corrupt"`
	// Writes counts results persisted behind the computation.
	Writes uint64 `json:"writes"`
	// WriteErrors counts failed persists (the result itself is unaffected).
	WriteErrors uint64 `json:"write_errors"`
}

// StoreStats is a snapshot of the persistent store's counters: the aggregate
// traffic since the session opened plus the same counters split by job kind.
type StoreStats struct {
	// Dir is the store's root directory.
	Dir string `json:"dir"`
	// Counters aggregates the disk-tier traffic across kinds.
	Counters StoreCounters `json:"counters"`
	// Kinds splits the same counters by job kind.
	Kinds map[string]StoreCounters `json:"kinds,omitempty"`
}

// storeCounters mirrors the internal counter snapshot into the public shape.
func storeCounters(c store.Counters) StoreCounters {
	return StoreCounters{
		Hits:        c.Hits,
		Misses:      c.Misses,
		Bypassed:    c.Bypassed,
		Corrupt:     c.Corrupt,
		Writes:      c.Writes,
		WriteErrors: c.WriteErrors,
	}
}

// Stats returns a snapshot of the session's engine counters.
func (s *Session) Stats() Stats {
	st := Stats{
		Workers:    s.eng.Workers(),
		Executed:   s.eng.Executed(),
		Hits:       s.eng.Hits(),
		CachedJobs: s.eng.CacheLen(),
	}
	if s.store != nil {
		kinds := make(map[string]StoreCounters)
		for kind, c := range s.store.KindCounters() { //lint:deterministic map-to-map copy, order-insensitive
			kinds[kind] = storeCounters(c)
		}
		st.Store = &StoreStats{
			Dir:      s.store.Dir(),
			Counters: storeCounters(s.store.Counters()),
			Kinds:    kinds,
		}
	}
	return st
}

// overlay fills the zero fields of req from the session defaults.
func (s *Session) overlay(req Request) Request {
	d := s.defaults
	if req.Stages == 0 {
		req.Stages = d.Stages
	}
	if req.Policy == "" {
		req.Policy = d.Policy
	}
	if req.Core == "" {
		req.Core = d.Core
	}
	if req.Scale == 0 {
		req.Scale = d.Scale
	}
	if req.MaxInstructions == 0 {
		req.MaxInstructions = d.MaxInstructions
	}
	if req.MDPTEntries == 0 {
		req.MDPTEntries = d.MDPTEntries
	}
	if req.Predictor == "" {
		req.Predictor = d.Predictor
	}
	if req.MDPTWays == 0 {
		req.MDPTWays = d.MDPTWays
	}
	if req.DDCSizes == nil {
		req.DDCSizes = d.DDCSizes
	}
	return req
}

// Run executes one simulation request (memoized: repeating a request is
// served from the session cache) and returns the result with its
// mis-speculated pairs annotated.
func (s *Session) Run(ctx context.Context, req Request) (*Result, error) {
	results, err := s.RunGrid(ctx, []Request{req})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// itemKey groups grid requests that share a preprocessed work item.  The
// workload identity is its canonical JSON (the benchmark name, or the full
// normalized synthetic spec including its seed).
type itemKey struct {
	workload string
	scale    int
	max      uint64
}

// RunGrid executes a set of simulation requests as one job set: the whole
// grid is declared up front, fans out over the engine's worker pool, and
// shares the session cache, so requests that differ only in policy or stage
// count build and preprocess their workload exactly once.  Results are
// positional: results[i] answers reqs[i].
func (s *Session) RunGrid(ctx context.Context, reqs []Request) ([]*Result, error) {
	type planned struct {
		req  Request
		key  itemKey
		spec multiscalar.SimulateJob
		ref  engine.Ref
	}
	plan := make([]planned, len(reqs))
	b := s.eng.NewBatch()
	for i, req := range reqs {
		req = s.overlay(req)
		if err := req.Validate(); err != nil {
			if len(reqs) > 1 {
				return nil, fmt.Errorf("request %d: %w", i, err)
			}
			return nil, err
		}
		req = req.Normalize()
		scale, err := req.scale()
		if err != nil {
			return nil, err
		}
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		spec := multiscalar.SimulateJob{
			Item: multiscalar.PreprocessJob{
				Program: req.Workload().buildJob(scale),
				Trace:   req.traceConfig(),
			},
			Config: cfg,
		}
		plan[i] = planned{
			req:  req,
			key:  itemKey{req.Workload().CanonicalJSON(), scale, req.MaxInstructions},
			spec: spec,
			ref:  b.Add(spec),
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	// Resolve each distinct work item (and its program) once for annotation;
	// both are cache hits since the simulations above already computed them.
	type annotation struct {
		prog *program.Program
		item *multiscalar.WorkItem
	}
	annotations := map[itemKey]annotation{}
	for _, p := range plan {
		if _, ok := annotations[p.key]; ok {
			continue
		}
		prog, err := engine.Resolve[*program.Program](ctx, s.eng, p.spec.Item.(multiscalar.PreprocessJob).Program)
		if err != nil {
			return nil, err
		}
		item, err := engine.Resolve[*multiscalar.WorkItem](ctx, s.eng, p.spec.Item)
		if err != nil {
			return nil, err
		}
		annotations[p.key] = annotation{prog: prog, item: item}
	}

	results := make([]*Result, len(plan))
	for i, p := range plan {
		res := engine.Get[multiscalar.Result](b, p.ref)
		a := annotations[p.key]
		results[i] = newResult(p.req, res, a.item, a.prog)
	}
	return results, nil
}

// Prepared is a preprocessed simulation that Execute runs from scratch on
// every call, bypassing the session cache.  It exists for benchmarking
// (cmd/memdep-perf times repeated executions); ordinary clients should use
// Run, which is memoized.
//
// A Prepared owns a private simulator arena that Execute reuses from call to
// call, so repeated executions measure simulation cost, not allocator
// traffic.  Execute is therefore NOT safe for concurrent use; prepare one
// per goroutine.
type Prepared struct {
	req  Request
	item *multiscalar.WorkItem
	cfg  multiscalar.Config
	sim  *multiscalar.Simulator
}

// Prepare validates the request and resolves its work item through the
// session cache.
func (s *Session) Prepare(ctx context.Context, req Request) (*Prepared, error) {
	req = s.overlay(req)
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = req.Normalize()
	scale, err := req.scale()
	if err != nil {
		return nil, err
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	item, err := engine.Resolve[*multiscalar.WorkItem](ctx, s.eng, multiscalar.PreprocessJob{
		Program: req.Workload().buildJob(scale),
		Trace:   req.traceConfig(),
	})
	if err != nil {
		return nil, err
	}
	return &Prepared{req: req, item: item, cfg: cfg, sim: multiscalar.NewSimulator()}, nil
}

// Tasks returns the number of dynamic tasks in the prepared work item.
func (p *Prepared) Tasks() int { return p.item.Tasks() }

// Execute runs the simulation once, uncached, on the Prepared's reusable
// arena.  The result skips the static-pair annotation (no program image is
// attached).
func (p *Prepared) Execute(ctx context.Context) (*Result, error) {
	res, err := p.sim.Simulate(ctx, p.item, p.cfg)
	if err != nil {
		return nil, err
	}
	return newResult(p.req, res, p.item, nil), nil
}

// Benchmark describes one synthetic workload of the suite.
type Benchmark struct {
	// Name is the benchmark name as used in the paper's tables.
	Name string `json:"name"`
	// Suite is the benchmark suite ("SPECint92", "SPECint95", "SPECfp95").
	Suite string `json:"suite"`
	// Description summarises the original program and its synthetic stand-in.
	Description string `json:"description"`
	// DefaultScale is the scale used by full experiment runs.
	DefaultScale int `json:"default_scale"`
}

// Benchmarks lists the synthetic workload suite in name order.
func Benchmarks() []Benchmark {
	names := workload.Names()
	out := make([]Benchmark, 0, len(names))
	for _, name := range names {
		w := workload.MustGet(name)
		out = append(out, Benchmark{
			Name:         w.Name,
			Suite:        w.Suite.String(),
			Description:  w.Description,
			DefaultScale: w.DefaultScale,
		})
	}
	return out
}
