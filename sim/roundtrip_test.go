package sim

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRequestJSONRoundTrip populates every Request field with a non-default
// value and checks encode→decode→DeepEqual.
func TestRequestJSONRoundTrip(t *testing.T) {
	req := Request{
		Bench: "espresso",
		Synth: &SynthSpec{
			Name: "stress", Seed: 9, Ops: 4096, Body: 128, TaskSize: 16,
			TaskSpread: 4, LoadFrac: 0.3, StoreFrac: 0.2, DepFrac: 0.7,
			DepDists:     []DistBucket{{Dist: 8, Weight: 2}, {Dist: 64, Weight: 1}},
			AliasSetSize: 4, LoopCarried: 0.4,
		},
		Stages:          4,
		Policy:          PolicySync,
		Core:            CoreStepped,
		Scale:           2,
		MaxInstructions: 123_456,
		MDPTEntries:     128,
		Predictor:       TableSetAssoc,
		MDPTWays:        2,
		DDCSizes:        []int{16, 64},
	}
	if n := reflect.TypeOf(req).NumField(); n != 11 {
		t.Fatalf("Request has %d fields; update this test to populate all of them", n)
	}
	if n := reflect.TypeOf(*req.Synth).NumField(); n != 12 {
		t.Fatalf("SynthSpec has %d fields; update this test to populate all of them", n)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Fatalf("round trip changed the request:\n got %+v\nwant %+v", back, req)
	}

	// The normalized form must round trip exactly too (defaults are concrete
	// values, not omitted fields).
	norm := Request{Bench: "compress"}.Normalize()
	data, err = json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	back = Request{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm, back) {
		t.Fatalf("normalized request did not round trip:\n got %+v\nwant %+v", back, norm)
	}
}

// TestEnumSpellings checks that every enum parses all its accepted spellings
// (canonical, case-folded, aliases) and canonicalizes through JSON decoding.
func TestEnumSpellings(t *testing.T) {
	t.Run("policy", func(t *testing.T) {
		cases := map[string]Policy{
			"NEVER": PolicyNever, "never": PolicyNever,
			"ALWAYS": PolicyAlways, "Always": PolicyAlways,
			"WAIT":  PolicyWait,
			"PSYNC": PolicyPerfectSync, "psync": PolicyPerfectSync,
			"PERFECT-SYNC": PolicyPerfectSync, "perfectsync": PolicyPerfectSync,
			"SYNC":  PolicySync,
			"ESYNC": PolicyESync, "esync": PolicyESync, " Esync ": PolicyESync,
		}
		for spelling, want := range cases {
			got, err := ParsePolicy(spelling)
			if err != nil {
				t.Errorf("ParsePolicy(%q): %v", spelling, err)
				continue
			}
			if got != want {
				t.Errorf("ParsePolicy(%q) = %v, want %v", spelling, got, want)
			}
			var p Policy
			if err := json.Unmarshal([]byte(`"`+strings.TrimSpace(spelling)+`"`), &p); err != nil {
				t.Errorf("unmarshal %q: %v", spelling, err)
			} else if p != want {
				t.Errorf("unmarshal %q = %v, want canonical %v", spelling, p, want)
			}
		}
		if _, err := ParsePolicy("SOMETIMES"); err == nil {
			t.Error("ParsePolicy accepted an unknown policy")
		}
		if len(Policies()) != 6 {
			t.Errorf("Policies() = %v", Policies())
		}
	})

	t.Run("table", func(t *testing.T) {
		cases := map[string]TableKind{
			"full": TableFullAssoc, "FULL": TableFullAssoc,
			"setassoc": TableSetAssoc, "SetAssoc": TableSetAssoc,
			"storeset": TableStoreSet, "STORESET": TableStoreSet,
		}
		for spelling, want := range cases {
			got, err := ParseTableKind(spelling)
			if err != nil || got != want {
				t.Errorf("ParseTableKind(%q) = %v, %v; want %v", spelling, got, err, want)
			}
			var k TableKind
			if err := json.Unmarshal([]byte(`"`+spelling+`"`), &k); err != nil || k != want {
				t.Errorf("unmarshal %q = %v, %v; want %v", spelling, k, err, want)
			}
		}
		if _, err := ParseTableKind("cam"); err == nil {
			t.Error("ParseTableKind accepted an unknown organization")
		}
	})

	t.Run("core", func(t *testing.T) {
		cases := map[string]CoreMode{
			"event": CoreEvent, "EVENT": CoreEvent, "Event": CoreEvent,
			"stepped": CoreStepped, "Stepped": CoreStepped,
		}
		for spelling, want := range cases {
			got, err := ParseCoreMode(spelling)
			if err != nil || got != want {
				t.Errorf("ParseCoreMode(%q) = %v, %v; want %v", spelling, got, err, want)
			}
			var m CoreMode
			if err := json.Unmarshal([]byte(`"`+spelling+`"`), &m); err != nil || m != want {
				t.Errorf("unmarshal %q = %v, %v; want %v", spelling, m, err, want)
			}
		}
		if _, err := ParseCoreMode("polling"); err == nil {
			t.Error("ParseCoreMode accepted an unknown mode")
		}
	})
}

// TestValidateFieldErrors checks that Validate reports structured, per-field
// errors and collects several at once.
func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name   string
		req    Request
		fields []string
	}{
		{"empty", Request{}, []string{"bench"}},
		{"unknown bench", Request{Bench: "nope"}, []string{"bench"}},
		{"bad policy", Request{Bench: "compress", Policy: "SOMETIMES"}, []string{"policy"}},
		{"bad core", Request{Bench: "compress", Core: "polling"}, []string{"core"}},
		{"bad predictor", Request{Bench: "compress", Predictor: "cam"}, []string{"predictor"}},
		{"negative stages", Request{Bench: "compress", Stages: -1}, []string{"stages"}},
		{"huge stages", Request{Bench: "compress", Stages: 512}, []string{"stages"}},
		{"negative scale", Request{Bench: "compress", Scale: -2}, []string{"scale"}},
		{"negative entries", Request{Bench: "compress", MDPTEntries: -1}, []string{"mdpt_entries"}},
		{"negative ways", Request{Bench: "compress", MDPTWays: -1}, []string{"mdpt_ways"}},
		{"bad ddc size", Request{Bench: "compress", DDCSizes: []int{0}}, []string{"ddc_sizes"}},
		{"several at once", Request{Bench: "nope", Policy: "SOMETIMES", Stages: -1},
			[]string{"bench", "stages", "policy"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid request")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error is %T, want *ValidationError", err)
			}
			var got []string
			for _, f := range verr.Fields {
				got = append(got, f.Field)
			}
			if !reflect.DeepEqual(got, tc.fields) {
				t.Errorf("fields = %v, want %v", got, tc.fields)
			}
		})
	}

	if err := (Request{Bench: "compress"}).Validate(); err != nil {
		t.Errorf("minimal request rejected: %v", err)
	}
	if err := (Request{Bench: "101.tomcatv", Stages: 4, Policy: "perfect-sync",
		Predictor: "SETASSOC", Core: "Stepped", MDPTWays: 2}).Validate(); err != nil {
		t.Errorf("well-formed request rejected: %v", err)
	}
}

// TestNormalizeDefaults checks the documented defaults and canonicalization.
func TestNormalizeDefaults(t *testing.T) {
	n := Request{Bench: "compress", Policy: "esync", Core: "EVENT", Predictor: "Full"}.Normalize()
	want := Request{Bench: "compress", Stages: 8, Policy: PolicyESync, Core: CoreEvent,
		Predictor: TableFullAssoc, MDPTEntries: 64, Scale: 3}
	if !reflect.DeepEqual(n, want) {
		t.Errorf("Normalize = %+v, want %+v", n, want)
	}
	// Ways are echoed as the effective (clamped) geometry.
	n = Request{Bench: "compress", Predictor: TableSetAssoc}.Normalize()
	if n.MDPTWays != 4 {
		t.Errorf("setassoc default ways = %d, want 4", n.MDPTWays)
	}
	n = Request{Bench: "compress", Predictor: TableSetAssoc, MDPTEntries: 8, MDPTWays: 32}.Normalize()
	if n.MDPTWays != 8 {
		t.Errorf("ways not clamped to entries: %d", n.MDPTWays)
	}
	// Normalize is idempotent.
	once := Request{Bench: "sc", Predictor: TableStoreSet}.Normalize()
	if twice := once.Normalize(); !reflect.DeepEqual(once, twice) {
		t.Errorf("Normalize not idempotent: %+v vs %+v", once, twice)
	}
}

// TestValidationErrorJSON checks the structured error encodes as the shape
// the HTTP service documents.
func TestValidationErrorJSON(t *testing.T) {
	err := Request{Bench: "nope", Stages: -1}.Validate()
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T", err)
	}
	data, jerr := json.Marshal(verr)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var decoded ValidationError
	if jerr := json.Unmarshal(data, &decoded); jerr != nil {
		t.Fatal(jerr)
	}
	if !reflect.DeepEqual(*verr, decoded) {
		t.Errorf("validation error did not round trip: %+v vs %+v", *verr, decoded)
	}
	if !strings.Contains(verr.Error(), "bench") || !strings.Contains(verr.Error(), "stages") {
		t.Errorf("Error() = %q, want both field names", verr.Error())
	}
}
