package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// synthStressSpec is a mispredict-prone spec used across the tests.
func synthStressSpec() *SynthSpec {
	return &SynthSpec{
		Seed:         7,
		Ops:          8192,
		Body:         128,
		AliasSetSize: 4,
		LoopCarried:  0.5,
		DepDists:     []DistBucket{{Dist: 16, Weight: 2}, {Dist: 96, Weight: 1}},
	}
}

// TestSynthDeterministicAcrossWorkers pins the determinism contract through
// the whole stack: the same spec+seed produces DeepEqual simulation results
// on a 1-worker and an 8-worker session, and a byte-identical trace
// (disassembly and committed stream summary).
func TestSynthDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	reqs := []Request{
		{Synth: synthStressSpec()},
		{Synth: synthStressSpec(), Policy: PolicyAlways},
		{Synth: synthStressSpec(), Policy: PolicySync, Stages: 4},
	}
	serial := NewSession(WithWorkers(1))
	parallel := NewSession(WithWorkers(8))
	got1, err := serial.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := parallel.RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, gotN) {
		t.Fatal("synthetic grid results differ between 1 and 8 workers")
	}
	// Repeating the grid on a fresh session reproduces it exactly.
	again, err := NewSession(WithWorkers(4)).RunGrid(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, again) {
		t.Fatal("synthetic grid results are not reproducible across sessions")
	}

	treq := TraceRequest{Synth: synthStressSpec()}
	asm1, err := serial.Disassemble(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	asmN, err := parallel.Disassemble(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	if asm1 != asmN {
		t.Fatal("synthetic disassembly differs across sessions")
	}
	sum1, err := serial.Trace(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	sumN, err := parallel.Trace(ctx, treq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum1, sumN) {
		t.Fatalf("synthetic trace summaries differ: %+v vs %+v", sum1, sumN)
	}
}

// TestSynthSeedsDiffer checks that different seeds yield different
// dependence profiles end to end.
func TestSynthSeedsDiffer(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	a, err := s.Run(ctx, Request{Synth: &SynthSpec{Seed: 1, Ops: 8192, Body: 128}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(ctx, Request{Synth: &SynthSpec{Seed: 2, Ops: 8192, Body: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Misspeculations == b.Misspeculations && a.Loads == b.Loads {
		t.Fatalf("seeds 1 and 2 are indistinguishable: %d cycles, %d misspecs", a.Cycles, a.Misspeculations)
	}
}

// TestSynthGridSharesWorkItem checks that a synthetic policy grid builds and
// preprocesses its workload once: the cache key is the full spec+seed, so
// requests differing only in policy share the program, trace and work item.
func TestSynthGridSharesWorkItem(t *testing.T) {
	ctx := context.Background()
	s := NewSession(WithWorkers(2))
	reqs := []Request{
		{Synth: synthStressSpec(), Policy: PolicyNever},
		{Synth: synthStressSpec(), Policy: PolicyAlways},
		{Synth: synthStressSpec(), Policy: PolicyESync},
	}
	if _, err := s.RunGrid(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	// 1 build + 1 preprocess + 3 simulations.
	if st := s.Stats(); st.Executed != 5 {
		t.Errorf("executed %d jobs, want 5 (shared build/preprocess)", st.Executed)
	}
	// A different seed is a different workload: nothing is shared.
	other := synthStressSpec()
	other.Seed = 8
	if _, err := s.Run(ctx, Request{Synth: other, Policy: PolicyNever}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Executed != 8 {
		t.Errorf("executed %d jobs, want 8 (new seed rebuilds the pipeline)", st.Executed)
	}
}

// TestSynthResultEcho checks the result is self-describing: it echoes the
// normalized spec and the workload's display name.
func TestSynthResultEcho(t *testing.T) {
	res, err := NewSession().Run(context.Background(), Request{Synth: &SynthSpec{Seed: 3, Ops: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	req := res.Request
	if req.Synth == nil || req.Bench != "" {
		t.Fatalf("result request does not echo the synthetic workload: %+v", req)
	}
	if req.Synth.Body != 512 || req.Synth.Name != "synth" || req.Synth.AliasSetSize != 1 {
		t.Errorf("echoed spec is not normalized: %+v", req.Synth)
	}
	if req.WorkloadName() != "synth" || req.Scale != 1 {
		t.Errorf("workload name %q scale %d", req.WorkloadName(), req.Scale)
	}
}

// TestSynthValidation covers the workload-selection and spec-field errors.
func TestSynthValidation(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	cases := map[string]Request{
		"both":      {Bench: "compress", Synth: &SynthSpec{}},
		"neither":   {},
		"bad_ops":   {Synth: &SynthSpec{Ops: -5}},
		"bad_fracs": {Synth: &SynthSpec{LoadFrac: 0.8, StoreFrac: 0.8}},
		"bad_dist":  {Synth: &SynthSpec{DepDists: []DistBucket{{Dist: 0, Weight: 1}}}},
	}
	for name, req := range cases {
		_, err := s.Run(ctx, req)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: want *ValidationError, got %v", name, err)
		}
	}
	// Spec problems name their fields with the synth. prefix.
	err := (Request{Synth: &SynthSpec{Ops: -5}}).Validate()
	var verr *ValidationError
	if !errors.As(err, &verr) || len(verr.Fields) == 0 {
		t.Fatalf("want field errors, got %v", err)
	}
	if verr.Fields[0].Field != "synth.ops" {
		t.Errorf("field %q, want synth.ops", verr.Fields[0].Field)
	}
}

// TestWorkloadCanonicalJSON pins the workload identity encoding.
func TestWorkloadCanonicalJSON(t *testing.T) {
	b := Workload{Bench: "compress"}
	if got := b.CanonicalJSON(); got != `{"bench":"compress"}` {
		t.Errorf("bench identity %s", got)
	}
	sy := Workload{Synth: &SynthSpec{Seed: 5}}
	got := sy.CanonicalJSON()
	if !strings.HasPrefix(got, `{"synth":{`) || !strings.Contains(got, `"seed":5`) {
		t.Errorf("synth identity %s", got)
	}
	// The identity is the normalized spec: zero and normalized agree.
	if (Workload{Synth: &SynthSpec{}}).CanonicalJSON() != (Workload{Synth: (&SynthSpec{}).Normalize()}).CanonicalJSON() {
		t.Error("zero and normalized specs have different identities")
	}
	if err := (Workload{Bench: "compress"}).Validate(); err != nil {
		t.Errorf("bench workload invalid: %v", err)
	}
	if err := (Workload{}).Validate(); err == nil {
		t.Error("empty workload validated")
	}
	if (Workload{Synth: &SynthSpec{Name: "x"}}).Name() != "x" {
		t.Error("synth name not honoured")
	}
}

// TestSynthScaleCap checks a huge scale cannot multiply a synthetic
// workload past the generator's dynamic-length cap.
func TestSynthScaleCap(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	_, err := s.Run(ctx, Request{Synth: &SynthSpec{Ops: 5_000_000}, Scale: 1_000_000})
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("over-scaled synth request: want *ValidationError, got %v", err)
	}
	if verr.Fields[0].Field != "scale" {
		t.Errorf("field %q, want scale", verr.Fields[0].Field)
	}
	if _, err := s.Trace(ctx, TraceRequest{Synth: &SynthSpec{Ops: 5_000_000}, Scale: 1_000_000}); !errors.As(err, &verr) {
		t.Errorf("over-scaled trace request: want *ValidationError, got %v", err)
	}
	// A modest scale on a modest spec still works.
	if _, err := s.Run(ctx, Request{Synth: &SynthSpec{Ops: 4096, Body: 64}, Scale: 3}); err != nil {
		t.Errorf("scale 3: %v", err)
	}
}

// TestSuiteSynthValidation checks a bad base spec on SuiteOptions surfaces
// with the same structured shape as everywhere else in the facade.
func TestSuiteSynthValidation(t *testing.T) {
	_, err := NewSession().RunExperiment(context.Background(), "sensitivity-synth",
		SuiteOptions{Quick: true, Synth: &SynthSpec{Ops: -1}})
	var verr *ValidationError
	if !errors.As(err, &verr) || len(verr.Fields) == 0 {
		t.Fatalf("want *ValidationError with fields, got %v", err)
	}
	if verr.Fields[0].Field != "synth.ops" {
		t.Errorf("field %q, want synth.ops", verr.Fields[0].Field)
	}
}
