package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzRequestNormalize throws arbitrary JSON at the request facade and checks
// the contracts the HTTP server and CLI lean on: decoding plus
// Normalize/Validate never panic on any input, Normalize is idempotent, a
// valid request stays valid through Normalize, and the workload identity
// (which keys the session cache) is unchanged by normalization.
func FuzzRequestNormalize(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"bench":"compress"}`,
		`{"synth":{"seed":1}}`,
		`{"bench":"compress","stages":4,"policy":"naive","core":"stepped","scale":2,` +
			`"mdpt_entries":128,"predictor":"setassoc","mdpt_ways":2,"ddc_sizes":[16,64]}`,
		`{"synth":{"name":"x","seed":7,"ops":4096,"body":64,"task_size":12,` +
			`"task_spread":40,"load_frac":0.5,"store_frac":0.25,"dep_frac":1,` +
			`"dep_dists":[{"dist":3,"weight":2}],"alias_set_size":5,"loop_carried":0.75}}`,
		`{"bench":"nosuch","stages":-3,"scale":-1,"mdpt_entries":-4,"mdpt_ways":-2,"ddc_sizes":[0,-5]}`,
		`{"bench":"compress","synth":{}}`,
		`{"synth":{"ops":9999999,"task_size":1,"task_spread":3}}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Request
		if err := json.Unmarshal(data, &r); err != nil {
			return // not a request; decoding rejected it before the facade
		}
		rawErr := r.Validate() // must classify, never panic
		n := r.Normalize()
		normErr := n.Validate()

		if again := n.Normalize(); !reflect.DeepEqual(n, again) {
			t.Errorf("Normalize is not idempotent:\nonce:  %+v\ntwice: %+v", n, again)
		}
		if rawErr == nil && normErr != nil {
			t.Errorf("valid request became invalid after Normalize: %v\nraw:  %+v\nnorm: %+v",
				normErr, r, n)
		}
		if got, want := n.Workload().CanonicalJSON(), r.Workload().CanonicalJSON(); got != want {
			t.Errorf("workload identity changed across Normalize:\nraw:  %s\nnorm: %s", want, got)
		}
		_ = n.WorkloadName()
	})
}
