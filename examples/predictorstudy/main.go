// Predictorstudy compares the three prediction-table organizations of the
// memdep subsystem -- the paper's fully associative MDPT, the
// set-associative load-PC-indexed variant and the store-set-style
// organization -- under both hardware predictors (SYNC and ESYNC), through
// the public facade (memdep/sim).
//
// The whole organization × policy grid is one RunGrid call: six simulations
// execute in parallel on the -jobs worker pool and share one preprocessed
// work item.  The numbers show how the organization changes what the
// mechanism learns (loads delayed, mis-speculations left) while the
// committed work stays identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"memdep/sim"
)

func main() {
	bench := flag.String("bench", "xlisp", "benchmark to study")
	maxInstr := flag.Uint64("max-instructions", 150_000, "cap on committed instructions")
	entries := flag.Int("mdpt-entries", 64, "prediction-table entries")
	ways := flag.Int("mdpt-ways", 4, "associativity for the setassoc/storeset organizations")
	jobs := flag.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	session := sim.NewSession(sim.WithWorkers(*jobs))

	var reqs []sim.Request
	for _, pol := range []sim.Policy{sim.PolicySync, sim.PolicyESync} {
		for _, table := range sim.TableKinds() {
			reqs = append(reqs, sim.Request{
				Bench:           *bench,
				Stages:          8,
				Policy:          pol,
				Predictor:       table,
				MDPTEntries:     *entries,
				MDPTWays:        *ways,
				MaxInstructions: *maxInstr,
			})
		}
	}
	results, err := session.RunGrid(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	out := sim.NewTable(
		fmt.Sprintf("Prediction-table organizations on %s (%d instructions, 8 stages)",
			*bench, results[0].Instructions),
		"policy", "organization", "IPC", "misspec left", "loads delayed", "released stale")
	for _, res := range results {
		req := res.Request
		org := string(req.Predictor)
		if req.Predictor != sim.TableFullAssoc {
			org = fmt.Sprintf("%s (%d ways)", req.Predictor, req.MDPTWays)
		}
		out.AddRow(
			req.Policy.String(),
			org,
			fmt.Sprintf("%.2f", res.IPC),
			fmt.Sprint(res.Misspeculations),
			fmt.Sprint(res.LoadsWaited),
			fmt.Sprint(res.MemDep.LoadsReleasedStale),
		)
	}
	fmt.Print(out.Render())

	st := session.Stats()
	fmt.Printf("\n[engine: %d workers, %d jobs executed, %d cache hits]\n",
		st.Workers, st.Executed, st.Hits)
	fmt.Println("\nReading the table:")
	fmt.Println("  * all organizations learn the same hot dependences; they differ under capacity pressure;")
	fmt.Println("  * \"released stale\" counts loads delayed for a store that never signalled --")
	fmt.Println("    the cost of a false or stale prediction;")
	fmt.Println("  * the sensitivity-predictor experiment (memdep-bench) sweeps entries × ways × counter bits.")
}
