// Predictorstudy drives the MDPT/MDST structures directly -- without the
// Multiscalar timing simulator -- to show how the mechanism of the paper
// learns a store→load dependence and synchronizes its dynamic instances.
//
// The scenario mirrors the working example of Figure 4 of the paper: a loop
// whose store in iteration i produces the value loaded in iteration i+1
// (dependence distance 1).  The first instance mis-speculates; after the
// mis-speculation is recorded, later instances are predicted and
// synchronized, whichever of the load or the store becomes ready first.
package main

import (
	"fmt"

	"memdep/internal/memdep"
)

const (
	loadPC  = 0x400 // the dependent load  (LD in figure 4)
	storePC = 0x380 // the producing store (ST in figure 4)
)

func main() {
	sys := memdep.NewSystem(memdep.Config{
		Entries:   64,
		SyncSlots: 8,
		Predictor: memdep.PredictESync,
	})

	fmt.Println("step 1: iteration 1 mis-speculates (load executed before the store)")
	sys.RecordMisspeculation(memdep.PairKey{LoadPC: loadPC, StorePC: storePC}, 1, 0x1000)
	pred, ok := sys.MDPT().Lookup(memdep.PairKey{LoadPC: loadPC, StorePC: storePC})
	fmt.Printf("  MDPT entry allocated: dist=%d counter=%d sync=%v\n\n", pred.Dist, pred.Counter, pred.Sync && ok)

	fmt.Println("step 2: iteration 2 -- the load is ready before the store (figure 4 (c)/(d))")
	dec := sys.LoadIssue(memdep.LoadQuery{PC: loadPC, Instance: 2, LDID: 21})
	fmt.Printf("  load query: predicted=%v mustWait=%v waitingOn=%v\n", dec.Predicted, dec.Wait, dec.WaitPairs)
	sd := sys.StoreIssue(memdep.StoreQuery{PC: storePC, Instance: 1, STID: 11, TaskPC: 0x1000})
	fmt.Printf("  store signal: released loads %v (the waiting load may now execute)\n\n", sd.ReleasedLoads)

	fmt.Println("step 3: iteration 3 -- the store is ready before the load (figure 4 (e)/(f))")
	sd = sys.StoreIssue(memdep.StoreQuery{PC: storePC, Instance: 2, STID: 12, TaskPC: 0x1000})
	fmt.Printf("  store signal: no waiter yet, condition variable pre-set (released=%v)\n", sd.ReleasedLoads)
	dec = sys.LoadIssue(memdep.LoadQuery{PC: loadPC, Instance: 3, LDID: 31})
	fmt.Printf("  load query: predicted=%v mustWait=%v (continues immediately)\n\n", dec.Predicted, dec.Wait)

	fmt.Println("step 4: the dependence stops occurring; false delays weaken the prediction")
	for i := 0; i < 4; i++ {
		instance := uint64(10 + i)
		dec = sys.LoadIssue(memdep.LoadQuery{PC: loadPC, Instance: instance, LDID: int64(100 + i)})
		if dec.Wait {
			// No store ever signals: the load is released when all prior
			// stores resolve, and the prediction is weakened.
			sys.ReleaseLoad(int64(100 + i))
			sys.CommitLoad(loadPC, 0, dec.WaitPairs)
		}
		pred, _ = sys.MDPT().Lookup(memdep.PairKey{LoadPC: loadPC, StorePC: storePC})
		fmt.Printf("  instance %d: predicted=%v -> counter now %d\n", instance, dec.Predicted, pred.Counter)
	}

	fmt.Println("\nfinal statistics:")
	st := sys.Stats()
	fmt.Printf("  load queries      %d\n", st.LoadQueries)
	fmt.Printf("  loads made to wait %d\n", st.LoadsMadeToWait)
	fmt.Printf("  released by store  %d\n", st.LoadsReleasedByStore)
	fmt.Printf("  released stale     %d (false dependence delays)\n", st.LoadsReleasedStale)

	fmt.Println("\nDDC demonstration (temporal locality of mis-speculated pairs):")
	ddc := memdep.NewDDC(4)
	pairs := []memdep.PairKey{
		{LoadPC: 0x400, StorePC: 0x380},
		{LoadPC: 0x404, StorePC: 0x384},
		{LoadPC: 0x400, StorePC: 0x380},
		{LoadPC: 0x408, StorePC: 0x388},
		{LoadPC: 0x400, StorePC: 0x380},
		{LoadPC: 0x404, StorePC: 0x384},
	}
	for _, p := range pairs {
		hit := ddc.Access(p)
		fmt.Printf("  access %v -> hit=%v\n", p, hit)
	}
	fmt.Printf("  miss rate: %.1f%% over %d accesses\n", ddc.MissRate()*100, ddc.Accesses())
}
