// Policycompare reproduces, for a single benchmark, the policy comparison of
// Figures 5 and 6 of the paper: NEVER, ALWAYS (blind), WAIT (selective),
// PSYNC (ideal), and the MDPT/MDST mechanism with the SYNC and ESYNC
// predictors, on 4- and 8-stage Multiscalar processors.
package main

import (
	"flag"
	"fmt"
	"log"

	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	bench := flag.String("bench", "sc", "benchmark to compare policies on")
	maxInstr := flag.Uint64("max-instructions", 150_000, "cap on committed instructions")
	flag.Parse()

	wl, err := workload.Get(*bench)
	if err != nil {
		log.Fatal(err)
	}
	item, err := multiscalar.Preprocess(wl.Build(wl.DefaultScale), trace.Config{MaxInstructions: *maxInstr})
	if err != nil {
		log.Fatal(err)
	}

	table := stats.NewTable(
		fmt.Sprintf("Dependence speculation policies on %s (%d instructions)", wl.Name, item.Instructions),
		"stages", "policy", "IPC", "speedup vs NEVER", "misspec/load", "loads delayed")

	for _, stages := range []int{4, 8} {
		var never multiscalar.Result
		for _, pol := range policy.All() {
			res, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(stages, pol))
			if err != nil {
				log.Fatal(err)
			}
			if pol == policy.Never {
				never = res
			}
			table.AddRow(
				fmt.Sprint(stages),
				pol.String(),
				stats.FormatFloat(res.IPC(), 2),
				stats.FormatSpeedup(res.SpeedupOver(never)),
				stats.FormatFloat(res.MisspecsPerCommittedLoad(), 4),
				fmt.Sprint(res.LoadsWaited),
			)
		}
	}
	fmt.Print(table.Render())
	fmt.Println("\nPolicy descriptions:")
	for _, pol := range policy.All() {
		fmt.Printf("  %-7s %s\n", pol, pol.Description())
	}
}
