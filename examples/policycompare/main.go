// Policycompare reproduces, for a single benchmark, the policy comparison of
// Figures 5 and 6 of the paper: NEVER, ALWAYS (blind), WAIT (selective),
// PSYNC (ideal), and the MDPT/MDST mechanism with the SYNC and ESYNC
// predictors, on 4- and 8-stage Multiscalar processors -- as one grid
// request against the public facade (memdep/sim).
//
// The whole stage × policy grid executes in parallel on the -jobs worker
// pool; the preprocessed work item is shared by all twelve simulations
// through the session cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"memdep/sim"
)

func main() {
	bench := flag.String("bench", "sc", "benchmark to compare policies on")
	maxInstr := flag.Uint64("max-instructions", 150_000, "cap on committed instructions")
	jobs := flag.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	session := sim.NewSession(sim.WithWorkers(*jobs))

	// Declare the full grid before running anything.
	var reqs []sim.Request
	for _, stages := range []int{4, 8} {
		for _, pol := range sim.Policies() {
			reqs = append(reqs, sim.Request{
				Bench:           *bench,
				Stages:          stages,
				Policy:          pol,
				MaxInstructions: *maxInstr,
			})
		}
	}
	results, err := session.RunGrid(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	table := sim.NewTable(
		fmt.Sprintf("Dependence speculation policies on %s (%d instructions)", *bench, results[0].Instructions),
		"stages", "policy", "IPC", "speedup vs NEVER", "misspec/load", "loads delayed")

	var never *sim.Result
	for _, res := range results {
		if res.Request.Policy == sim.PolicyNever {
			never = res
		}
		table.AddRow(
			fmt.Sprint(res.Request.Stages),
			res.Request.Policy.String(),
			fmt.Sprintf("%.2f", res.IPC),
			fmt.Sprintf("%+.1f%%", res.SpeedupOver(never)),
			fmt.Sprintf("%.4f", res.MisspecsPerLoad),
			fmt.Sprint(res.LoadsWaited),
		)
	}
	fmt.Print(table.Render())
	st := session.Stats()
	fmt.Printf("\n[engine: %d workers, %d jobs executed]\n", st.Workers, st.Executed)
	fmt.Println("\nPolicy descriptions:")
	for _, pol := range sim.Policies() {
		fmt.Printf("  %-7s %s\n", pol, pol.Description())
	}
}
