// Policycompare reproduces, for a single benchmark, the policy comparison of
// Figures 5 and 6 of the paper: NEVER, ALWAYS (blind), WAIT (selective),
// PSYNC (ideal), and the MDPT/MDST mechanism with the SYNC and ESYNC
// predictors, on 4- and 8-stage Multiscalar processors.
//
// The whole stage × policy grid is declared as one job set and executed in
// parallel on the -jobs worker pool; the preprocessed work item is shared by
// all twelve simulations.
package main

import (
	"flag"
	"fmt"
	"log"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	bench := flag.String("bench", "sc", "benchmark to compare policies on")
	maxInstr := flag.Uint64("max-instructions", 150_000, "cap on committed instructions")
	jobs := flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	wl, err := workload.Get(*bench)
	if err != nil {
		log.Fatal(err)
	}

	eng := experiments.NewEngine(*jobs)
	itemSpec := multiscalar.PreprocessJob{
		Program: workload.BuildJob{Name: wl.Name, Scale: wl.DefaultScale},
		Trace:   trace.Config{MaxInstructions: *maxInstr},
	}

	// Declare the full grid before running anything.
	b := eng.NewBatch()
	type run struct {
		stages int
		pol    policy.Kind
		ref    engine.Ref
	}
	var runs []run
	for _, stages := range []int{4, 8} {
		for _, pol := range policy.All() {
			ref := b.Add(multiscalar.SimulateJob{Item: itemSpec, Config: multiscalar.DefaultConfig(stages, pol)})
			runs = append(runs, run{stages, pol, ref})
		}
	}
	if err := b.Run(); err != nil {
		log.Fatal(err)
	}
	item, err := engine.Resolve[*multiscalar.WorkItem](eng, itemSpec)
	if err != nil {
		log.Fatal(err)
	}

	table := stats.NewTable(
		fmt.Sprintf("Dependence speculation policies on %s (%d instructions)", wl.Name, item.Instructions),
		"stages", "policy", "IPC", "speedup vs NEVER", "misspec/load", "loads delayed")

	var never multiscalar.Result
	for _, rn := range runs {
		res := engine.Get[multiscalar.Result](b, rn.ref)
		if rn.pol == policy.Never {
			never = res
		}
		table.AddRow(
			fmt.Sprint(rn.stages),
			rn.pol.String(),
			stats.FormatFloat(res.IPC(), 2),
			stats.FormatSpeedup(res.SpeedupOver(never)),
			stats.FormatFloat(res.MisspecsPerCommittedLoad(), 4),
			fmt.Sprint(res.LoadsWaited),
		)
	}
	fmt.Print(table.Render())
	fmt.Printf("\n[engine: %d workers, %d jobs executed]\n", eng.Workers(), eng.Executed())
	fmt.Println("\nPolicy descriptions:")
	for _, pol := range policy.All() {
		fmt.Printf("  %-7s %s\n", pol, pol.Description())
	}
}
