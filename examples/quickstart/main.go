// Quickstart: build a synthetic benchmark, run it functionally, then compare
// blind data dependence speculation (ALWAYS) against the paper's
// prediction/synchronization mechanism (ESYNC) on an 8-stage Multiscalar
// processor.
package main

import (
	"fmt"
	"log"

	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	// 1. Pick a benchmark from the synthetic suite and build its program.
	wl := workload.MustGet("compress")
	prog := wl.Build(1)
	fmt.Printf("benchmark %s: %d static instructions\n", wl.Name, prog.Len())

	// 2. Run it on the functional simulator to see what it does.
	st, err := trace.Run(prog, trace.Config{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d instructions, %d loads, %d stores, %d tasks\n",
		st.Instructions, st.Loads, st.Stores, st.Tasks)

	// 3. Preprocess the committed stream into Multiscalar tasks.
	item, err := multiscalar.Preprocess(prog, trace.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Simulate an 8-stage Multiscalar processor under two speculation
	// policies: blind speculation and the MDPT/MDST mechanism with the ESYNC
	// predictor.
	always, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, policy.Always))
	if err != nil {
		log.Fatal(err)
	}
	esync, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, policy.ESync))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "ALWAYS", "ESYNC")
	fmt.Printf("%-22s %12d %12d\n", "cycles", always.Cycles, esync.Cycles)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", always.IPC(), esync.IPC())
	fmt.Printf("%-22s %12d %12d\n", "mis-speculations", always.Misspeculations, esync.Misspeculations)
	fmt.Printf("%-22s %12d %12d\n", "work squashed (instr)", always.SquashedInstructions, esync.SquashedInstructions)
	fmt.Printf("\nESYNC speedup over blind speculation: %+.1f%%\n", esync.SpeedupOver(always))
}
