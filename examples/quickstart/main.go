// Quickstart: build a synthetic benchmark, run it functionally, then compare
// blind data dependence speculation (ALWAYS) against the paper's
// prediction/synchronization mechanism (ESYNC) on an 8-stage Multiscalar
// processor.
//
// Everything runs through the job engine: the program build, the functional
// run and the two timing simulations are declared as jobs, the two
// simulations execute in parallel on the -jobs worker pool, and the
// preprocessed work item is computed once and shared by both.
package main

import (
	"flag"
	"fmt"
	"log"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	// experiments.NewEngine wires every evaluation layer's simulator into
	// the engine (program build, functional trace, window analysis,
	// Multiscalar preprocess + simulate).
	eng := experiments.NewEngine(*jobs)

	// 1. Pick a benchmark from the synthetic suite; the build job resolves to
	// its program.
	wl := workload.MustGet("compress")
	progSpec := workload.BuildJob{Name: wl.Name}
	prog, err := engine.Resolve[*program.Program](eng, progSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d static instructions\n", wl.Name, prog.Len())

	// 2. Run it on the functional simulator to see what it does.
	st, err := engine.Resolve[trace.Stats](eng, trace.RunJob{Program: progSpec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d instructions, %d loads, %d stores, %d tasks\n",
		st.Instructions, st.Loads, st.Stores, st.Tasks)

	// 3. Declare the two timing simulations -- blind speculation and the
	// MDPT/MDST mechanism with the ESYNC predictor -- as one job set.  The
	// preprocessing job they share runs once.
	itemSpec := multiscalar.PreprocessJob{Program: progSpec}
	b := eng.NewBatch()
	alwaysRef := b.Add(multiscalar.SimulateJob{Item: itemSpec, Config: multiscalar.DefaultConfig(8, policy.Always)})
	esyncRef := b.Add(multiscalar.SimulateJob{Item: itemSpec, Config: multiscalar.DefaultConfig(8, policy.ESync)})
	if err := b.Run(); err != nil {
		log.Fatal(err)
	}
	always := engine.Get[multiscalar.Result](b, alwaysRef)
	esync := engine.Get[multiscalar.Result](b, esyncRef)

	fmt.Printf("\n%-22s %12s %12s\n", "", "ALWAYS", "ESYNC")
	fmt.Printf("%-22s %12d %12d\n", "cycles", always.Cycles, esync.Cycles)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", always.IPC(), esync.IPC())
	fmt.Printf("%-22s %12d %12d\n", "mis-speculations", always.Misspeculations, esync.Misspeculations)
	fmt.Printf("%-22s %12d %12d\n", "work squashed (instr)", always.SquashedInstructions, esync.SquashedInstructions)
	fmt.Printf("\nESYNC speedup over blind speculation: %+.1f%%\n", esync.SpeedupOver(always))
	fmt.Printf("[engine: %d workers, %d jobs executed]\n", eng.Workers(), eng.Executed())
}
