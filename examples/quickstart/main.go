// Quickstart: inspect a synthetic benchmark, then compare blind data
// dependence speculation (ALWAYS) against the paper's
// prediction/synchronization mechanism (ESYNC) on an 8-stage Multiscalar
// processor -- entirely through the public facade (memdep/sim).
//
// The two timing simulations are submitted as one grid: they execute in
// parallel on the -jobs worker pool and share the preprocessed work item
// through the session cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"memdep/sim"
)

func main() {
	jobs := flag.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	// A session wraps the job engine with every evaluation layer registered;
	// all calls below share its memoized cache.
	session := sim.NewSession(sim.WithWorkers(*jobs))
	ctx := context.Background()

	// 1. Pick a benchmark from the synthetic suite and run it on the
	// functional simulator to see what it does.
	sum, err := session.Trace(ctx, sim.TraceRequest{Bench: "compress"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d static instructions\n", sum.Bench, sum.StaticInstructions)
	fmt.Printf("functional run: %d instructions, %d loads, %d stores, %d tasks\n",
		sum.Instructions, sum.Loads, sum.Stores, sum.Tasks)

	// 2. Declare the two timing simulations -- blind speculation and the
	// MDPT/MDST mechanism with the ESYNC predictor -- as one grid.
	results, err := session.RunGrid(ctx, []sim.Request{
		{Bench: "compress", Stages: 8, Policy: sim.PolicyAlways},
		{Bench: "compress", Stages: 8, Policy: sim.PolicyESync},
	})
	if err != nil {
		log.Fatal(err)
	}
	always, esync := results[0], results[1]

	fmt.Printf("\n%-22s %12s %12s\n", "", "ALWAYS", "ESYNC")
	fmt.Printf("%-22s %12d %12d\n", "cycles", always.Cycles, esync.Cycles)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", always.IPC, esync.IPC)
	fmt.Printf("%-22s %12d %12d\n", "mis-speculations", always.Misspeculations, esync.Misspeculations)
	fmt.Printf("%-22s %12d %12d\n", "work squashed (instr)", always.SquashedInstructions, esync.SquashedInstructions)
	fmt.Printf("\nESYNC speedup over blind speculation: %+.1f%%\n", esync.SpeedupOver(always))
	st := session.Stats()
	fmt.Printf("[engine: %d workers, %d jobs executed]\n", st.Workers, st.Executed)
}
