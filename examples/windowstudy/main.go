// Windowstudy reproduces the dependence-behaviour characterisation of
// section 5.3 of the paper (Tables 3-5) for one benchmark: how the number of
// worst-case mis-speculations grows with the instruction window, how few
// static store→load pairs account for them, and how well small data
// dependence caches capture those pairs.
package main

import (
	"flag"
	"fmt"
	"log"

	"memdep/internal/stats"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark to analyse")
	maxInstr := flag.Uint64("max-instructions", 300_000, "cap on committed instructions")
	flag.Parse()

	wl, err := workload.Get(*bench)
	if err != nil {
		log.Fatal(err)
	}
	prog := wl.Build(wl.DefaultScale)

	results, err := window.Analyze(prog, window.Config{
		WindowSizes: window.DefaultWindowSizes(),
		DDCSizes:    window.DefaultDDCSizes(),
		Trace:       trace.Config{MaxInstructions: *maxInstr},
	})
	if err != nil {
		log.Fatal(err)
	}

	table := stats.NewTable(
		fmt.Sprintf("Unrealistic OOO model: memory dependence behaviour of %s", wl.Name),
		"window", "misspecs", "misspec/load", "static pairs", "pairs for 99.9%",
		"DDC-32 miss%", "DDC-128 miss%", "DDC-512 miss%")
	for _, r := range results {
		table.AddRow(
			fmt.Sprint(r.WindowSize),
			stats.FormatCount(r.Misspeculations),
			stats.FormatFloat(r.MisspecRate(), 4),
			fmt.Sprint(r.StaticPairs),
			fmt.Sprint(r.PairsForCoverage),
			stats.FormatPercent(r.DDCMissRate[32]),
			stats.FormatPercent(r.DDCMissRate[128]),
			stats.FormatPercent(r.DDCMissRate[512]),
		)
	}
	fmt.Print(table.Render())
	fmt.Println("\nObservations to compare against the paper:")
	fmt.Println("  * mis-speculations grow sharply as the window widens (Table 3);")
	fmt.Println("  * a handful of static pairs covers 99.9% of them (Table 4);")
	fmt.Println("  * moderate DDCs capture most of those pairs (Table 5).")
}
