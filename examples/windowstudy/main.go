// Windowstudy reproduces the dependence-behaviour characterisation of
// section 5.3 of the paper (Tables 3-5) for one or more benchmarks through
// the public facade (memdep/sim): how the number of worst-case
// mis-speculations grows with the instruction window, how few static
// store→load pairs account for them, and how well small data dependence
// caches capture those pairs.
//
// With several -bench values (comma-separated) the analyses are one
// WindowGrid call: they run in parallel on the -jobs worker pool and are
// memoized, so repeating a benchmark costs one functional run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"memdep/sim"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark(s) to analyse, comma-separated")
	maxInstr := flag.Uint64("max-instructions", 300_000, "cap on committed instructions")
	jobs := flag.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	var names []string
	for _, n := range strings.Split(*bench, ",") {
		names = append(names, strings.TrimSpace(n))
	}

	session := sim.NewSession(sim.WithWorkers(*jobs))

	// Declare every benchmark's analysis up front; the grid fans out over
	// the worker pool.
	reqs := make([]sim.WindowRequest, len(names))
	for i, name := range names {
		reqs[i] = sim.WindowRequest{
			Bench:           name,
			MaxInstructions: *maxInstr,
			WindowSizes:     sim.DefaultWindowSizes(),
			DDCSizes:        sim.DefaultDDCSizes(),
		}
	}
	grids, err := session.WindowGrid(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	for i, name := range names {
		results := grids[i]
		table := sim.NewTable(
			fmt.Sprintf("Unrealistic OOO model: memory dependence behaviour of %s", name),
			"window", "misspecs", "misspec/load", "static pairs", "pairs for 99.9%",
			"DDC-32 miss%", "DDC-128 miss%", "DDC-512 miss%")
		for _, r := range results {
			table.AddRow(
				fmt.Sprint(r.WindowSize),
				fmt.Sprint(r.Misspeculations),
				fmt.Sprintf("%.4f", r.MisspecsPerLoad),
				fmt.Sprint(r.StaticPairs),
				fmt.Sprint(r.PairsForCoverage),
				fmt.Sprintf("%.2f", r.DDCMissRate[32]),
				fmt.Sprintf("%.2f", r.DDCMissRate[128]),
				fmt.Sprintf("%.2f", r.DDCMissRate[512]),
			)
		}
		fmt.Print(table.Render())
		fmt.Println()
	}
	fmt.Println("Observations to compare against the paper:")
	fmt.Println("  * mis-speculations grow sharply as the window widens (Table 3);")
	fmt.Println("  * a handful of static pairs covers 99.9% of them (Table 4);")
	fmt.Println("  * moderate DDCs capture most of those pairs (Table 5).")
}
