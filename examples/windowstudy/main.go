// Windowstudy reproduces the dependence-behaviour characterisation of
// section 5.3 of the paper (Tables 3-5) for one or more benchmarks: how the
// number of worst-case mis-speculations grows with the instruction window,
// how few static store→load pairs account for them, and how well small data
// dependence caches capture those pairs.
//
// Each benchmark's analysis is one engine job; with several -bench values
// (comma-separated) the analyses run in parallel on the -jobs worker pool.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/stats"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark(s) to analyse, comma-separated")
	maxInstr := flag.Uint64("max-instructions", 300_000, "cap on committed instructions")
	jobs := flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	var names []string
	for _, n := range strings.Split(*bench, ",") {
		names = append(names, strings.TrimSpace(n))
	}

	eng := experiments.NewEngine(*jobs)

	b := eng.NewBatch()
	refs := make([]engine.Ref, len(names))
	for i, name := range names {
		if _, err := workload.Get(name); err != nil {
			log.Fatal(err)
		}
		refs[i] = b.Add(window.AnalyzeJob{
			Program: workload.BuildJob{Name: name},
			Config: window.Config{
				WindowSizes: window.DefaultWindowSizes(),
				DDCSizes:    window.DefaultDDCSizes(),
				Trace:       trace.Config{MaxInstructions: *maxInstr},
			},
		})
	}
	if err := b.Run(); err != nil {
		log.Fatal(err)
	}

	for i, name := range names {
		results := engine.Get[[]window.Result](b, refs[i])
		table := stats.NewTable(
			fmt.Sprintf("Unrealistic OOO model: memory dependence behaviour of %s", name),
			"window", "misspecs", "misspec/load", "static pairs", "pairs for 99.9%",
			"DDC-32 miss%", "DDC-128 miss%", "DDC-512 miss%")
		for _, r := range results {
			table.AddRow(
				fmt.Sprint(r.WindowSize),
				stats.FormatCount(r.Misspeculations),
				stats.FormatFloat(r.MisspecRate(), 4),
				fmt.Sprint(r.StaticPairs),
				fmt.Sprint(r.PairsForCoverage),
				stats.FormatPercent(r.DDCMissRate[32]),
				stats.FormatPercent(r.DDCMissRate[128]),
				stats.FormatPercent(r.DDCMissRate[512]),
			)
		}
		fmt.Print(table.Render())
		fmt.Println()
	}
	fmt.Println("Observations to compare against the paper:")
	fmt.Println("  * mis-speculations grow sharply as the window widens (Table 3);")
	fmt.Println("  * a handful of static pairs covers 99.9% of them (Table 4);")
	fmt.Println("  * moderate DDCs capture most of those pairs (Table 5).")
}
