package memdep_test

import (
	"context"
	"strings"
	"testing"

	"memdep/internal/experiments"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

// These integration tests exercise the whole pipeline -- workload
// construction, functional simulation, dependence analysis, timing simulation
// and experiment drivers -- and check the cross-cutting invariants that the
// paper's methodology relies on.

// TestEndToEndInvariantsPerBenchmark checks, for each SPECint92 stand-in:
// the committed work is identical across all speculation policies, the
// oracle policies never mis-speculate, blind speculation does mis-speculate,
// and the prediction mechanism removes most of those mis-speculations.
func TestEndToEndInvariantsPerBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs are skipped in -short mode")
	}
	for _, name := range workload.SPECint92Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			item, err := multiscalar.Preprocess(workload.MustGet(name).Build(1),
				trace.Config{MaxInstructions: 50_000})
			if err != nil {
				t.Fatal(err)
			}
			results := map[policy.Kind]multiscalar.Result{}
			for _, pol := range policy.All() {
				res, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, pol))
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				results[pol] = res
			}
			// Committed work identical across policies.
			ref := results[policy.Never]
			for pol, res := range results {
				if res.Instructions != ref.Instructions || res.Loads != ref.Loads || res.Tasks != ref.Tasks {
					t.Errorf("%v commits different work than NEVER", pol)
				}
			}
			// Oracle policies never mis-speculate.
			for _, pol := range []policy.Kind{policy.Never, policy.Wait, policy.PerfectSync} {
				if results[pol].Misspeculations != 0 {
					t.Errorf("%v mis-speculated %d times", pol, results[pol].Misspeculations)
				}
			}
			// Blind speculation mis-speculates on every one of these programs.
			if results[policy.Always].Misspeculations == 0 {
				t.Error("ALWAYS should mis-speculate")
			}
			// The mechanism removes the bulk of the mis-speculations.
			if results[policy.Sync].Misspeculations*2 > results[policy.Always].Misspeculations {
				t.Errorf("SYNC left %d of %d mis-speculations",
					results[policy.Sync].Misspeculations, results[policy.Always].Misspeculations)
			}
			// Speculation beats no speculation.
			if results[policy.Always].Cycles >= results[policy.Never].Cycles {
				t.Error("ALWAYS should beat NEVER")
			}
		})
	}
}

// TestWindowModelConsistentWithMultiscalarLearning checks that the static
// pairs the Multiscalar run mis-speculates on are a subset of the pairs the
// window model identifies as dependences (the window model is the worst
// case, so anything the processor trips over must be visible to it).
func TestWindowModelConsistentWithMultiscalarLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs are skipped in -short mode")
	}
	prog := workload.MustGet("compress").Build(1)
	windowRes, err := window.Analyze(prog, window.Config{
		WindowSizes: []int{512},
		DDCSizes:    []int{512},
		Trace:       trace.Config{MaxInstructions: 60_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	item, err := multiscalar.Preprocess(prog, trace.Config{MaxInstructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, policy.Always))
	if err != nil {
		t.Fatal(err)
	}
	// The ARB names the store that detected the violation, which is not
	// necessarily the program-order-closest producer the window model
	// records, so compare at the granularity of load PCs: any load the
	// processor trips over must be one the worst-case window model flags as
	// having an in-window dependence.
	knownLoads := map[uint64]bool{}
	for pair := range windowRes[0].PairCounts {
		knownLoads[pair.LoadPC] = true
	}
	for pair := range res.MisspecPairs {
		if !knownLoads[pair.LoadPC] {
			t.Errorf("Multiscalar mis-speculated on load %#x, which the 512-instruction window model never flags", pair.LoadPC)
		}
	}
}

// TestExperimentTablesRenderAndAgree runs a pair of experiment drivers twice
// on fresh runners and checks the rendered output is identical
// (deterministic end to end) and mentions every benchmark it should.
func TestExperimentTablesRenderAndAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs are skipped in -short mode")
	}
	render := func() (string, string) {
		r := experiments.NewRunner(experiments.Quick())
		t6, err := r.Table6MultiscalarMisspec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		f6, err := r.Figure6MechanismSpeedup(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return t6.Render(), f6.Render()
	}
	t6a, f6a := render()
	t6b, f6b := render()
	if t6a != t6b || f6a != f6b {
		t.Error("experiment output is not deterministic across fresh runners")
	}
	for _, name := range workload.SPECint92Names() {
		if !strings.Contains(t6a, name) && !strings.Contains(f6a, name) {
			t.Errorf("benchmark %s missing from experiment output", name)
		}
	}
}

// TestSpec95WorkloadsSimulateUnderMechanism runs a representative slice of
// the SPEC95 stand-ins (one per behavioural regime from DESIGN.md) through
// the full mechanism to guard the Figure 7 path.
func TestSpec95WorkloadsSimulateUnderMechanism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs are skipped in -short mode")
	}
	for _, name := range []string{"124.m88ksim", "101.tomcatv", "102.swim", "145.fpppp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			item, err := multiscalar.Preprocess(workload.MustGet(name).Build(1),
				trace.Config{MaxInstructions: 40_000})
			if err != nil {
				t.Fatal(err)
			}
			for _, pol := range []policy.Kind{policy.Always, policy.ESync, policy.PerfectSync} {
				res, err := multiscalar.Simulate(item, multiscalar.DefaultConfig(8, pol))
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				if res.Instructions != item.Instructions {
					t.Errorf("%v committed %d of %d instructions", pol, res.Instructions, item.Instructions)
				}
				if pol == policy.PerfectSync && res.Misspeculations != 0 {
					t.Errorf("PSYNC mis-speculated %d times", res.Misspeculations)
				}
			}
		})
	}
}
